#include "sched/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "base/hashing.h"
#include "base/strings.h"
#include "bdd/bdd.h"
#include "sched/lambda.h"

namespace ws {

const char* SpeculationModeName(SpeculationMode mode) {
  switch (mode) {
    case SpeculationMode::kWavesched: return "wavesched";
    case SpeculationMode::kSinglePath: return "single-path";
    case SpeculationMode::kWaveschedSpec: return "wavesched-spec";
  }
  return "?";
}

namespace {

// Accumulates elapsed wall time into a ScheduleStats phase counter on scope
// exit. Phases re-enter (GenerateCandidates runs once per admission), so the
// sink is additive.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::int64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::int64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

// (node value, iteration) — the identity of an operation/value instance.
using Key = std::pair<std::uint32_t, int>;

Key MakeKey(NodeId node, int iter) { return {node.value(), iter}; }
Key MakeKey(const InstRef& ref) { return {ref.node.value(), ref.iter}; }

// One execution of a (node, iteration) with a concrete operand binding. The
// guard is the operand-correctness condition: the stored physical result
// equals the semantically correct value of the instance iff the guard holds.
struct Binding {
  std::vector<InstRef> operands;
  Bdd guard;
  bool completed = false;
  std::string guard_at_schedule;  // paper-style annotation, frozen
};

// A published result version available for consumption: (version index into
// bindings[key], within-cycle readiness offset for chaining).
struct VersionRec {
  int version = 0;
  double ready_offset = 0.0;
};

// A multi-cycle operation still occupying its unit.
struct InFlight {
  InstRef inst;
  Bdd guard;          // squashed (removed) when this folds to 0
  int remaining = 0;  // continuation cycles still to run
  int latency = 1;
  int fu_type = -1;
};

struct LoopState {
  bool exited = false;
  int exit_iter = 0;        // valid when exited
  int next_unresolved = 0;  // r: smallest i with condition instance unresolved
  int base() const { return exited ? exit_iter : next_unresolved; }
};

// A completed-but-unresolved conditional execution whose value is latched in
// a register, awaiting validation.
struct LatchedVersion {
  int version = 0;
};

// The symbolic execution front along one control path.
struct PathState {
  std::map<Key, std::vector<Binding>> bindings;
  std::map<Key, std::vector<VersionRec>> available;
  std::vector<InFlight> inflight;
  std::map<Key, bool> resolved;                      // condition instances
  std::map<Key, std::vector<LatchedVersion>> latched;  // unresolved conds
  std::vector<LoopState> loops;
};

// A schedulable candidate produced by the successor computation.
struct Candidate {
  NodeId node;
  int iter = 0;
  std::vector<InstRef> operands;
  Bdd guard;
  int fu_type = -1;
  int latency = 1;
  double delay = 1.0;
  double start_offset = 0.0;
  double criticality = 0.0;
};

class SchedulerImpl {
 public:
  SchedulerImpl(const Cdfg& g, const FuLibrary& lib, const Allocation& alloc,
                const SchedulerOptions& options)
      : g_(g), lib_(lib), alloc_(alloc), opts_(options), stg_(g.name()) {}

  ScheduleResult Run();

 private:
  // Cooperative cancellation: polls the caller-owned cancel flag and the
  // deadline. Called once per worklist state and once per candidate
  // admission pass, so a run is abandoned within one state's work of the
  // trigger and never yields a partial STG.
  void CheckCancellation() const {
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      throw CancelledError("schedule cancelled by caller");
    }
    if (opts_.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *opts_.deadline) {
      throw DeadlineExceededError("schedule deadline exceeded");
    }
  }

  // --- Condition variables ---------------------------------------------------
  int CondVar(NodeId cond, int iter);
  Bdd CondLit(const PathState& ps, NodeId cond, int iter, bool polarity);

  // --- Guard construction ------------------------------------------------------
  Bdd CtrlGuard(const PathState& ps, NodeId node, int iter);
  Bdd ExitGuard(const PathState& ps, LoopId loop, int exit_iter);

  // --- Value versions -----------------------------------------------------------
  struct ResolvedVersion {
    InstRef producer;
    Bdd guard;
    double ready_offset = 0.0;
  };
  // All versions of operand `m` as seen by a consumer in scope
  // (consumer_loop, consumer_iter). Implements Observation 1: recursion
  // through selects conjoins path-select literals; loop-phis step across
  // iterations; cross-loop reads become exit values.
  std::vector<ResolvedVersion> Versions(const PathState& ps, NodeId m,
                                        LoopId consumer_loop,
                                        int consumer_iter, int depth = 0);
  std::vector<ResolvedVersion> VersionsAt(const PathState& ps, NodeId m,
                                          int iter, int depth);

  Bdd BindingGuard(const PathState& ps, const Key& key, int version) const;

  // True if a single binding's validity guard covers `ctrl` — i.e. one
  // physical execution delivers a correct value in every case the instance
  // executes. (A union of partial-guard executions does not qualify: no
  // downstream consumer could pick between them without a datapath mux,
  // which is itself an instance that must reach single coverage.)
  bool InstanceCovered(const PathState& ps, const Key& key, Bdd ctrl,
                       bool require_completed);

  // --- Candidate generation / state filling ---------------------------------------
  // Clears and refills `*out` (caller-owned so its capacity is reused across
  // the greedy admission loop).
  void GenerateCandidates(PathState& ps, std::vector<Candidate>* out);
  void GenerateSelectCandidates(PathState& ps, const Node& n, int iter,
                                Bdd ctrl, std::vector<Candidate>* cands);
  void FillState(StateId sid, PathState& ps);

  // --- Resolution / partitioning -----------------------------------------------------
  struct Leaf {
    std::vector<CondLiteral> cube;
    PathState ps;
  };
  void PartitionLeaves(const PathState& ps, std::vector<CondLiteral>& cube,
                       std::vector<Leaf>& out, int depth);
  void Fold(PathState& ps, NodeId cond, int iter, bool value);

  // --- Lifecycle ----------------------------------------------------------------
  struct HardUse {
    NodeId node;
    int delta;
  };
  void ComputeHardUses();
  void GarbageCollect(PathState& ps);
  bool IsDone(const PathState& ps, std::vector<OutputBinding>* outputs);

  // --- Canonical state signatures ---------------------------------------------
  //
  // Closure detection (the paper's relabeling map M) keys states on a
  // shift-canonical structural fingerprint. TokenizeState serializes the
  // PathState into `sig_tokens_` — a length-prefixed u64 token stream whose
  // vector equality is exactly "same state modulo a uniform per-loop
  // iteration shift" — and the closure map keys a 128-bit hash of that
  // stream, falling back to exact token comparison on hash hits. Guards
  // enter the stream as the node index of their shift-canonicalized BDD
  // (BddManager::RenameDense), never as strings.
  void TokenizeState(const PathState& ps, std::vector<int>* bases);
  // Prepares the var shift map for `bases` (creating shifted condition
  // variables as needed); leaves the result in shift_var_map_ /
  // shift_identity_.
  void PrepareShift(const std::vector<int>& bases);
  // The canonical token of `guard` under the prepared shift.
  std::uint64_t GuardToken(Bdd guard);

  // Legacy human-readable signature, kept for WS_DEBUG_SIG dumps, deadlock
  // diagnostics, and the WS_CHECK_SIG cross-validation of the fingerprint
  // path (tests/signature_test.cc). Not on the hot path.
  std::string DebugSignature(const PathState& ps, std::vector<int>* bases);
  std::string CanonGuard(Bdd guard, const std::vector<int>& bases);

  struct GetResult {
    StateId sid;
    std::vector<std::pair<LoopId, int>> shift;
    bool fresh = false;
  };
  GetResult CreateOrGet(PathState ps);

  int IterBase(const PathState& ps, NodeId node) const {
    const Node& n = g_.node(node);
    if (!n.loop.valid()) return 0;
    return ps.loops[n.loop.value()].base();
  }

  int LatencyOf(OpKind kind) const {
    return lib_.type(lib_.TypeFor(kind)).latency;
  }

  // --- Members -------------------------------------------------------------------
  const Cdfg& g_;
  const FuLibrary& lib_;
  const Allocation& alloc_;
  const SchedulerOptions& opts_;

  BddManager mgr_;
  std::map<Key, int> cond_vars_;
  std::vector<double> var_probs_;
  std::unordered_map<int, bool> likely_assignment_;  // single-path mode

  std::vector<double> lambda_;
  std::vector<std::vector<HardUse>> hard_uses_;  // by node
  std::vector<int> escape_delta_;                // by node; -1 = no escape

  Stg stg_;
  ScheduleStats stats_;

  // Closure map: state fingerprint -> canonical entries. Buckets are vectors
  // so true 128-bit collisions degrade to an exact comparison, never to a
  // wrong merge. Each entry keeps the full token stream for that comparison
  // plus the loop bases the tokens were canonicalized at (needed to compute
  // the relabel shift on a hit).
  struct CanonEntry {
    std::vector<std::uint64_t> tokens;
    StateId sid;
    std::vector<int> bases;
  };
  std::unordered_map<Fp128, std::vector<CanonEntry>, Fp128Hash> canon_;
  // WS_CHECK_SIG cross-validation: legacy string signature -> StateId,
  // maintained only when the env var is set.
  std::unordered_map<std::string, StateId> canon_check_;
  const bool check_signatures_ = std::getenv("WS_CHECK_SIG") != nullptr;

  std::deque<std::pair<StateId, PathState>> worklist_;

  // Scratch buffers reused across hot-path calls (cleared, never shrunk, so
  // steady-state scheduling does not allocate in these paths).
  std::vector<std::uint64_t> sig_tokens_;            // TokenizeState output
  std::vector<int> shift_var_map_;                   // var -> shifted var
  std::vector<std::pair<int, Key>> shift_wanted_;    // PrepareShift scratch
  bool shift_identity_ = true;                       // all bases zero
  bool shift_epoch_open_ = false;                    // RenameDense memo state
  std::vector<std::pair<int, int>> pending_iters_;   // (loop, iter), sorted
  std::vector<std::uint64_t> pend_tokens_;           // pending-work section
  std::vector<int> spec_base_;                       // GenerateCandidates
  std::vector<Candidate> cand_scratch_;              // raw candidates
  std::vector<bool> is_loop_cond_;                   // by node, built once

  static constexpr int kMaxResolvePerState = 4;
  static constexpr int kMaxRecursionDepth = 64;
};

int SchedulerImpl::CondVar(NodeId cond, int iter) {
  const Key key = MakeKey(cond, iter);
  auto it = cond_vars_.find(key);
  if (it != cond_vars_.end()) return it->second;
  const std::string name =
      g_.node(cond).name + "_" + std::to_string(iter);
  const int var = mgr_.NewVar(name);
  cond_vars_.emplace(key, var);
  const double p = g_.cond_probability(cond);
  var_probs_.resize(static_cast<std::size_t>(var) + 1, 0.5);
  var_probs_[static_cast<std::size_t>(var)] = p;
  likely_assignment_[var] = p >= 0.5;
  return var;
}

Bdd SchedulerImpl::CondLit(const PathState& ps, NodeId cond, int iter,
                           bool polarity) {
  auto it = ps.resolved.find(MakeKey(cond, iter));
  if (it != ps.resolved.end()) {
    return it->second == polarity ? mgr_.True() : mgr_.False();
  }
  const int var = CondVar(cond, iter);
  return polarity ? mgr_.Var(var) : mgr_.NotVar(var);
}

Bdd SchedulerImpl::CtrlGuard(const PathState& ps, NodeId node, int iter) {
  const Node& n = g_.node(node);
  Bdd guard = mgr_.True();
  if (n.loop.valid()) {
    const Loop& loop = g_.loop(n.loop);
    // Iteration i of the body requires continue-conditions 0..i to hold;
    // loop-header nodes (which compute the continue decision itself) only
    // require 0..i-1.
    const int upper = g_.InLoopHeader(node) ? iter - 1 : iter;
    const LoopState& ls = ps.loops[n.loop.value()];
    // Conditions below next_unresolved are resolved true; start there.
    const int lo = ls.exited ? 0 : ls.next_unresolved;
    for (int k = lo; k <= upper; ++k) {
      const Bdd lit = CondLit(ps, loop.cond, k, true);
      if (mgr_.IsFalse(lit)) return mgr_.False();
      guard = mgr_.And(guard, lit);
    }
  }
  for (const ControlLiteral& lit : n.ctrl) {
    // Guard conditions live in the same loop scope, hence same iteration.
    const Bdd b = CondLit(ps, lit.cond, n.loop.valid() ? iter : 0,
                          lit.polarity);
    if (mgr_.IsFalse(b)) return mgr_.False();
    guard = mgr_.And(guard, b);
  }
  return guard;
}

Bdd SchedulerImpl::ExitGuard(const PathState& ps, LoopId loop_id,
                             int exit_iter) {
  const Loop& loop = g_.loop(loop_id);
  const LoopState& ls = ps.loops[loop_id.value()];
  if (ls.exited) {
    return exit_iter == ls.exit_iter ? mgr_.True() : mgr_.False();
  }
  if (exit_iter < ls.next_unresolved) return mgr_.False();
  Bdd guard = CondLit(ps, loop.cond, exit_iter, false);
  for (int k = ls.next_unresolved; k < exit_iter; ++k) {
    guard = mgr_.And(guard, CondLit(ps, loop.cond, k, true));
  }
  return guard;
}

Bdd SchedulerImpl::BindingGuard(const PathState& ps, const Key& key,
                                int version) const {
  auto it = ps.bindings.find(key);
  WS_CHECK(it != ps.bindings.end());
  WS_CHECK(version >= 0 &&
           static_cast<std::size_t>(version) < it->second.size());
  return it->second[static_cast<std::size_t>(version)].guard;
}

bool SchedulerImpl::InstanceCovered(const PathState& ps, const Key& key,
                                    Bdd ctrl, bool require_completed) {
  auto it = ps.bindings.find(key);
  if (it == ps.bindings.end()) return false;
  for (const Binding& b : it->second) {
    if (require_completed && !b.completed) continue;
    if (mgr_.Covers(b.guard, ctrl)) return true;
  }
  return false;
}

std::vector<SchedulerImpl::ResolvedVersion> SchedulerImpl::Versions(
    const PathState& ps, NodeId m, LoopId consumer_loop, int consumer_iter,
    int depth) {
  WS_CHECK_MSG(depth < kMaxRecursionDepth, "select/phi recursion too deep");
  const Node& n = g_.node(m);
  if (n.loop == consumer_loop) {
    return VersionsAt(ps, m, consumer_iter, depth + 1);
  }
  if (!n.loop.valid()) {
    return VersionsAt(ps, m, 0, depth + 1);
  }
  // Cross-loop read: the value of m at the producer loop's exit.
  const LoopState& ls = ps.loops[n.loop.value()];
  if (ls.exited) {
    return VersionsAt(ps, m, ls.exit_iter, depth + 1);
  }
  // Speculate on the exit iteration within the lookahead window.
  std::vector<ResolvedVersion> out;
  for (int j = ls.next_unresolved;
       j <= ls.next_unresolved + opts_.lookahead; ++j) {
    const Bdd exit_guard = ExitGuard(ps, n.loop, j);
    if (mgr_.IsFalse(exit_guard)) continue;
    for (const ResolvedVersion& v : VersionsAt(ps, m, j, depth + 1)) {
      const Bdd guard = mgr_.And(v.guard, exit_guard);
      if (mgr_.IsFalse(guard)) continue;
      out.push_back({v.producer, guard, v.ready_offset});
    }
  }
  return out;
}

std::vector<SchedulerImpl::ResolvedVersion> SchedulerImpl::VersionsAt(
    const PathState& ps, NodeId m, int iter, int depth) {
  WS_CHECK_MSG(depth < kMaxRecursionDepth, "select/phi recursion too deep");
  const Node& n = g_.node(m);
  std::vector<ResolvedVersion> out;
  switch (n.kind) {
    case OpKind::kConst:
    case OpKind::kInput:
      out.push_back({InstRef{m, 0, 0}, mgr_.True(), 0.0});
      return out;
    case OpKind::kSelect: {
      // A select materialized as a register transfer publishes a version
      // like any other operation.
      auto ait = ps.available.find(MakeKey(m, iter));
      if (ait != ps.available.end()) {
        for (const VersionRec& v : ait->second) {
          const Bdd guard = BindingGuard(ps, MakeKey(m, iter), v.version);
          if (mgr_.IsFalse(guard)) continue;
          out.push_back({InstRef{m, iter, v.version}, guard,
                         v.ready_offset});
        }
        return out;
      }
      const NodeId sel = n.inputs[0];
      const Node& sel_node = g_.node(sel);
      const int sel_iter =
          sel_node.loop == n.loop ? iter : 0;  // same-scope or top-level
      // Resolved but not yet materialized: forward through the chosen side
      // only (the mux steering is known).
      auto rit = ps.resolved.find(MakeKey(sel, sel_iter));
      if (rit != ps.resolved.end()) {
        return Versions(ps, n.inputs[rit->second ? 1 : 2], n.loop, iter,
                        depth + 1);
      }
      // Speculation through an unresolved select (Observation 1) is only
      // useful when the steering condition is control-relevant: the
      // controller will eventually resolve it and validate/invalidate the
      // speculative work. A datapath-only steering condition never
      // resolves, so guards minted on it could never be discharged —
      // consumers instead wait for the zero-delay 3-input mux.
      if (!g_.is_control_condition(sel)) return out;
      // Observation 1: the path through the select contributes the literal
      // that this path is selected.
      const Bdd lit_true = CondLit(ps, sel, sel_iter, true);
      const Bdd lit_false = CondLit(ps, sel, sel_iter, false);
      if (!mgr_.IsFalse(lit_true)) {
        for (const ResolvedVersion& v :
             Versions(ps, n.inputs[1], n.loop, iter, depth + 1)) {
          const Bdd guard = mgr_.And(v.guard, lit_true);
          if (!mgr_.IsFalse(guard)) {
            out.push_back({v.producer, guard, v.ready_offset});
          }
        }
      }
      if (!mgr_.IsFalse(lit_false)) {
        for (const ResolvedVersion& v :
             Versions(ps, n.inputs[2], n.loop, iter, depth + 1)) {
          const Bdd guard = mgr_.And(v.guard, lit_false);
          if (!mgr_.IsFalse(guard)) {
            out.push_back({v.producer, guard, v.ready_offset});
          }
        }
      }
      return out;
    }
    case OpKind::kLoopPhi: {
      if (iter == 0) {
        return Versions(ps, n.inputs[0], n.loop, 0, depth + 1);
      }
      return Versions(ps, n.inputs[1], n.loop, iter - 1, depth + 1);
    }
    case OpKind::kOutput:
      return Versions(ps, n.inputs[0], n.loop, iter, depth + 1);
    default: {
      // A scheduled kind: completed bindings of (m, iter).
      auto it = ps.available.find(MakeKey(m, iter));
      if (it == ps.available.end()) return out;
      for (const VersionRec& v : it->second) {
        const Bdd guard = BindingGuard(ps, MakeKey(m, iter), v.version);
        if (mgr_.IsFalse(guard)) continue;
        out.push_back({InstRef{m, iter, v.version}, guard, v.ready_offset});
      }
      return out;
    }
  }
}

void SchedulerImpl::GenerateSelectCandidates(PathState& ps, const Node& n,
                                             int iter, Bdd ctrl,
                                             std::vector<Candidate>* cands) {
  const NodeId s = n.inputs[0];
  const Node& s_node = g_.node(s);
  const int sel_iter = s_node.loop == n.loop ? iter : 0;
  const Bdd lit_t = CondLit(ps, s, sel_iter, true);
  const Bdd lit_f = CondLit(ps, s, sel_iter, false);
  const auto lvs = Versions(ps, n.inputs[1], n.loop, iter);
  const auto rvs = Versions(ps, n.inputs[2], n.loop, iter);

  auto emit = [&](std::vector<InstRef> operands, Bdd guard, double offset) {
    if (mgr_.IsFalse(guard)) return;
    auto bit = ps.bindings.find(MakeKey(n.id, iter));
    if (bit != ps.bindings.end()) {
      for (Binding& b : bit->second) {
        if (b.operands == operands) {
          b.guard = mgr_.Or(b.guard, guard);
          return;
        }
      }
    }
    Candidate c;
    c.node = n.id;
    c.iter = iter;
    c.operands = std::move(operands);
    c.guard = guard;
    c.fu_type = lib_.TypeFor(OpKind::kSelect);
    const FuType& fu = lib_.type(c.fu_type);
    c.latency = fu.latency;
    c.delay = fu.delay_ns;
    c.start_offset = offset;
    cands->push_back(std::move(c));
  };

  // Guarded copies of one side: correct when the steering points that way.
  // Only offered for control-relevant steering (the guard can then be
  // discharged by a later resolution); datapath-only steering must go
  // through the full mux below.
  if (g_.is_control_condition(s) || mgr_.IsTrue(lit_t) ||
      mgr_.IsTrue(lit_f)) {
    for (const auto& lv : lvs) {
      emit({lv.producer}, mgr_.AndAll({ctrl, lit_t, lv.guard}),
           lv.ready_offset);
    }
    for (const auto& rv : rvs) {
      emit({rv.producer}, mgr_.AndAll({ctrl, lit_f, rv.guard}),
           rv.ready_offset);
    }
  }

  // Full 3-input mux: needs the computed steering value; correct whichever
  // way it points (validity is ITE-shaped, so a mux of two valid versions is
  // unconditionally valid — datapath resolution without a controller fork).
  // Control-steered selects never need it: the controller resolves the
  // condition at the same cycle boundary the mux would, and the guarded
  // copies above then validate.
  if (!g_.is_control_condition(s) && !mgr_.IsTrue(lit_t) &&
      !mgr_.IsFalse(lit_t)) {
    const auto svs = Versions(ps, s, n.loop, iter);
    for (const auto& sv : svs) {
      for (const auto& lv : lvs) {
        for (const auto& rv : rvs) {
          const Bdd guard = mgr_.And(
              ctrl, mgr_.And(sv.guard,
                             mgr_.Or(mgr_.And(lit_t, lv.guard),
                                     mgr_.And(lit_f, rv.guard))));
          const double offset = std::max(
              {sv.ready_offset, lv.ready_offset, rv.ready_offset});
          emit({sv.producer, lv.producer, rv.producer}, guard, offset);
        }
      }
    }
  }
}

void SchedulerImpl::GenerateCandidates(PathState& ps,
                                       std::vector<Candidate>* out) {
  const PhaseTimer timer(&stats_.phase.successor_ns);
  // Speculation is throttled relative to the oldest pending committed work:
  // without this, a loop whose condition chain is faster than its slowest
  // data recurrence would let the resolution frontier race arbitrarily far
  // ahead of the lagging computation, and the backlog of pending instances
  // would grow without bound (preventing STG closure). The window advances
  // only as the backlog drains — which is also what bounded control/datapath
  // buffering in the synthesized hardware requires.
  std::vector<int>& spec_base = spec_base_;
  spec_base.assign(static_cast<std::size_t>(g_.num_loops()), 0);
  for (const Loop& loop : g_.loops()) {
    const LoopState& ls = ps.loops[loop.id.value()];
    int oldest = ls.exited ? ls.exit_iter : ls.next_unresolved;
    if (!ls.exited) {
      for (NodeId b : loop.body) {
        const Node& bn = g_.node(b);
        if (!IsScheduledKind(bn.kind)) continue;
        for (int iter = 0; iter < oldest; ++iter) {
          const Bdd ctrl = CtrlGuard(ps, b, iter);
          if (mgr_.IsFalse(ctrl)) continue;
          if (!InstanceCovered(ps, MakeKey(b, iter), ctrl,
                               /*require_completed=*/false)) {
            oldest = iter;
            break;
          }
        }
      }
    }
    spec_base[loop.id.value()] = oldest;
  }

  std::vector<Candidate>& cands = cand_scratch_;
  cands.clear();
  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      const LoopState& ls = ps.loops[n.loop.value()];
      hi = ls.exited ? ls.exit_iter
                     : spec_base[n.loop.value()] + opts_.lookahead;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      const Key key = MakeKey(n.id, iter);

      // Coverage: skip once a single existing binding's guard covers the
      // control guard (one execution delivers a correct value on every live
      // branch).
      auto bit = ps.bindings.find(key);
      if (InstanceCovered(ps, key, ctrl, /*require_completed=*/false)) {
        continue;
      }

      // Operand versions.
      std::vector<std::vector<ResolvedVersion>> operand_versions;
      bool feasible = true;
      if (n.kind == OpKind::kSelect) {
        // Selects are datapath muxes, not control: they materialize either
        // as a full 3-input mux (steer, both sides — validity is the
        // ITE-shaped guard, so a mux over two valid versions is itself
        // unconditionally valid and never forks the controller), or as a
        // guarded copy of one side (when only one side has been computed,
        // or the steering condition already resolved).
        GenerateSelectCandidates(ps, n, iter, ctrl, &cands);
        continue;
      } else {
        for (NodeId in : n.inputs) {
          auto vs = Versions(ps, in, n.loop, iter);
          if (vs.empty()) {
            feasible = false;
            break;
          }
          operand_versions.push_back(std::move(vs));
        }
      }
      if (!feasible) continue;

      // Memory token: same-array accesses execute in program order.
      if (n.kind == OpKind::kMemRead || n.kind == OpKind::kMemWrite) {
        const auto& accesses = g_.array_accesses(n.array);
        auto pos = std::find(accesses.begin(), accesses.end(), n.id);
        WS_CHECK(pos != accesses.end());
        NodeId prev;
        int prev_iter = iter;
        if (pos != accesses.begin()) {
          prev = *(pos - 1);
        } else if (n.loop.valid() && iter > 0) {
          prev = accesses.back();
          prev_iter = iter - 1;
        }
        if (prev.valid()) {
          std::vector<ResolvedVersion> tokens =
              VersionsAt(ps, prev, prev_iter, 0);
          if (tokens.empty()) continue;  // predecessor access not done yet
          operand_versions.push_back(std::move(tokens));
        }
      }

      // Cartesian product of operand choices.
      std::vector<std::size_t> idx(operand_versions.size(), 0);
      for (;;) {
        Bdd guard = ctrl;
        double start = 0.0;
        std::vector<InstRef> operands;
        operands.reserve(operand_versions.size());
        bool dead = false;
        for (std::size_t k = 0; k < operand_versions.size(); ++k) {
          const ResolvedVersion& v = operand_versions[k][idx[k]];
          guard = mgr_.And(guard, v.guard);
          if (mgr_.IsFalse(guard)) {
            dead = true;
            break;
          }
          start = std::max(start, v.ready_offset);
          operands.push_back(v.producer);
        }
        if (!dead) {
          // Deduplicate against existing bindings with identical operands:
          // the physical result is the same, so widen its validity guard
          // instead of re-executing.
          bool duplicate = false;
          if (bit != ps.bindings.end()) {
            for (Binding& b : bit->second) {
              if (b.operands == operands) {
                b.guard = mgr_.Or(b.guard, guard);
                duplicate = true;
                break;
              }
            }
          }
          if (!duplicate) {
            Candidate c;
            c.node = n.id;
            c.iter = iter;
            c.operands = std::move(operands);
            c.guard = guard;
            c.fu_type = lib_.TypeFor(n.kind);
            const FuType& fu = lib_.type(c.fu_type);
            c.latency = fu.latency;
            c.delay = fu.delay_ns;
            c.start_offset = start;
            cands.push_back(std::move(c));
          }
        }
        // Advance the product.
        std::size_t k = 0;
        for (; k < idx.size(); ++k) {
          if (++idx[k] < operand_versions[k].size()) break;
          idx[k] = 0;
        }
        if (k == idx.size()) break;
        if (idx.empty()) break;
      }
    }
  }

  // Mode filters and the speculative-store prohibition.
  std::vector<Candidate>& filtered = *out;
  filtered.clear();
  filtered.reserve(cands.size());
  for (Candidate& c : cands) {
    const OpKind kind = g_.node(c.node).kind;
    if (kind == OpKind::kMemWrite && !mgr_.IsTrue(c.guard)) {
      continue;  // stores are never speculative (irreversible side effect)
    }
    switch (opts_.mode) {
      case SpeculationMode::kWavesched:
        if (!mgr_.IsTrue(c.guard)) continue;
        break;
      case SpeculationMode::kSinglePath:
        if (!mgr_.Eval(c.guard, likely_assignment_)) continue;
        break;
      case SpeculationMode::kWaveschedSpec:
        break;
    }
    c.criticality = lambda_[c.node.value()] *
                    mgr_.Probability(c.guard, var_probs_);
    filtered.push_back(std::move(c));
  }
  stats_.candidates_generated += static_cast<std::int64_t>(filtered.size());
}

void SchedulerImpl::FillState(StateId sid, PathState& ps) {
  State& state = stg_.state(sid);

  // Resource occupancy for this cycle.
  std::vector<int> initiations(static_cast<std::size_t>(lib_.num_types()), 0);
  std::vector<int> active(static_cast<std::size_t>(lib_.num_types()), 0);

  // Place continuations of in-flight multi-cycle operations.
  std::vector<InFlight> still_flying;
  std::vector<std::pair<Key, int>> completions;  // (key, version)
  for (InFlight& f : ps.inflight) {
    ScheduledOp op;
    op.inst = f.inst;
    op.guard = ps.bindings[MakeKey(f.inst)]
                   [static_cast<std::size_t>(f.inst.version)]
                       .guard_at_schedule;
    op.fu_type = f.fu_type;
    op.stage = f.latency - f.remaining;
    state.ops.push_back(op);
    if (!lib_.type(f.fu_type).pipelined) {
      active[static_cast<std::size_t>(f.fu_type)]++;
    }
    if (--f.remaining == 0) {
      completions.emplace_back(MakeKey(f.inst), f.inst.version);
    } else {
      still_flying.push_back(f);
    }
  }
  ps.inflight = std::move(still_flying);

  // Greedy admission by criticality (Eq. 5), regenerating candidates after
  // each admission so newly chainable consumers are considered. The
  // candidate vector lives outside the loop so its capacity is reused.
  std::vector<Candidate> cands;
  for (;;) {
    if (static_cast<int>(state.ops.size()) >= opts_.max_ops_per_state) break;
    CheckCancellation();
    GenerateCandidates(ps, &cands);

    // Admission filters: resources and clock period.
    const Candidate* best = nullptr;
    for (const Candidate& c : cands) {
      const int t = c.fu_type;
      const int count = alloc_.Count(t);
      if (count != Allocation::kUnlimited) {
        if (initiations[static_cast<std::size_t>(t)] >= count) continue;
        if (!lib_.type(t).pipelined &&
            active[static_cast<std::size_t>(t)] +
                    initiations[static_cast<std::size_t>(t)] >=
                count) {
          continue;
        }
      }
      if (c.start_offset > 0.0) {
        if (!opts_.clock.allow_chaining) continue;
        if (c.latency > 1) continue;  // multi-cycle starts at a boundary
      }
      if (!opts_.clock.Fits(c.start_offset, c.delay)) continue;
      if (best == nullptr || c.criticality > best->criticality + 1e-12 ||
          (std::abs(c.criticality - best->criticality) <= 1e-12 &&
           (c.iter < best->iter ||
            (c.iter == best->iter && c.node < best->node)))) {
        best = &c;
      }
    }
    if (best == nullptr) break;

    // Admit.
    const Key key = MakeKey(best->node, best->iter);
    auto& blist = ps.bindings[key];
    const int version = static_cast<int>(blist.size());
    Binding b;
    b.operands = best->operands;
    b.guard = best->guard;
    b.guard_at_schedule = mgr_.ToString(best->guard);
    blist.push_back(std::move(b));

    initiations[static_cast<std::size_t>(best->fu_type)]++;

    ScheduledOp op;
    op.inst = InstRef{best->node, best->iter, version};
    op.operands = best->operands;
    op.guard = blist.back().guard_at_schedule;
    op.fu_type = best->fu_type;
    op.stage = 0;
    op.start_offset_ns = best->start_offset;
    state.ops.push_back(op);
    stats_.total_ops++;
    if (!mgr_.IsTrue(best->guard)) stats_.speculative_ops++;

    if (best->latency == 1) {
      // Completes this cycle: publish immediately so later admissions in
      // this same state may chain off it.
      blist.back().completed = true;
      ps.available[key].push_back(
          {version, best->start_offset + best->delay});
      if (g_.is_control_condition(best->node)) {
        ps.latched[key].push_back({version});
      }
    } else {
      InFlight f;
      f.inst = op.inst;
      f.guard = best->guard;
      f.remaining = best->latency - 1;
      f.latency = best->latency;
      f.fu_type = best->fu_type;
      ps.inflight.push_back(f);
    }
  }

  // Multi-cycle completions land at the end of this cycle.
  for (const auto& [key, version] : completions) {
    auto& blist = ps.bindings[key];
    blist[static_cast<std::size_t>(version)].completed = true;
    ps.available[key].push_back({version, 0.0});
    if (g_.is_control_condition(
            NodeId(key.first))) {
      ps.latched[key].push_back({version});
    }
  }

  // Reset chaining offsets: results are registered at the cycle boundary.
  for (auto& [key, versions] : ps.available) {
    for (VersionRec& v : versions) v.ready_offset = 0.0;
  }
}

void SchedulerImpl::Fold(PathState& ps, NodeId cond, int iter, bool value) {
  ps.resolved[MakeKey(cond, iter)] = value;
  auto vit = cond_vars_.find(MakeKey(cond, iter));
  if (vit != cond_vars_.end()) {
    const int var = vit->second;
    for (auto& [key, blist] : ps.bindings) {
      for (Binding& b : blist) {
        b.guard = mgr_.Restrict(b.guard, var, value);
        // A dead binding's operands are never consulted again (it cannot be
        // widened back — identical-operand candidates are rare and simply
        // get a fresh version). Scrubbing them keeps mispredicted-history
        // noise out of the canonical state signature.
        if (mgr_.IsFalse(b.guard)) b.operands.clear();
      }
    }
    std::vector<InFlight> kept;
    for (InFlight& f : ps.inflight) {
      f.guard = mgr_.Restrict(f.guard, var, value);
      if (mgr_.IsFalse(f.guard)) {
        stats_.squashed_ops++;
        // Invalidate the binding too: the physical result will never be
        // correct on this path and must not publish a version.
        Binding& dead = ps.bindings[MakeKey(f.inst)]
            [static_cast<std::size_t>(f.inst.version)];
        dead.guard = mgr_.False();
        dead.operands.clear();
        continue;
      }
      kept.push_back(f);
    }
    ps.inflight = std::move(kept);
  }

  // Drop dead versions / latched values (guard folded to 0).
  for (auto it = ps.available.begin(); it != ps.available.end();) {
    auto& versions = it->second;
    std::erase_if(versions, [&](const VersionRec& v) {
      return mgr_.IsFalse(BindingGuard(ps, it->first, v.version));
    });
    it = versions.empty() ? ps.available.erase(it) : std::next(it);
  }
  for (auto it = ps.latched.begin(); it != ps.latched.end();) {
    if (ps.resolved.contains(it->first)) {
      it = ps.latched.erase(it);
      continue;
    }
    auto& versions = it->second;
    std::erase_if(versions, [&](const LatchedVersion& v) {
      return mgr_.IsFalse(BindingGuard(ps, it->first, v.version));
    });
    it = versions.empty() ? ps.latched.erase(it) : std::next(it);
  }

  // Advance loop fronts.
  for (const Loop& loop : g_.loops()) {
    LoopState& ls = ps.loops[loop.id.value()];
    if (ls.exited) continue;
    for (;;) {
      auto rit = ps.resolved.find(MakeKey(loop.cond, ls.next_unresolved));
      if (rit == ps.resolved.end()) break;
      if (rit->second) {
        ls.next_unresolved++;
      } else {
        ls.exited = true;
        ls.exit_iter = ls.next_unresolved;
        break;
      }
    }
  }
}

void SchedulerImpl::PartitionLeaves(const PathState& ps,
                                    std::vector<CondLiteral>& cube,
                                    std::vector<Leaf>& out, int depth) {
  // Resolvable: latched condition instances whose validity guard has become
  // constant-true (the execution is known to have used correct operands).
  std::vector<std::pair<Key, int>> resolvable;
  for (const auto& [key, versions] : ps.latched) {
    for (const LatchedVersion& v : versions) {
      if (mgr_.IsTrue(BindingGuard(ps, key, v.version))) {
        resolvable.emplace_back(key, v.version);
        break;
      }
    }
    if (static_cast<int>(resolvable.size()) >= kMaxResolvePerState) break;
  }
  if (resolvable.empty() || depth > 8) {
    out.push_back(Leaf{cube, ps});
    return;
  }
  const auto [key, version] = resolvable.front();
  const NodeId cond(key.first);
  const int iter = key.second;
  for (const bool value : {true, false}) {
    PathState branch = ps;
    Fold(branch, cond, iter, value);
    cube.push_back(CondLiteral{InstRef{cond, iter, version}, value});
    PartitionLeaves(branch, cube, out, depth + 1);
    cube.pop_back();
  }
}

void SchedulerImpl::ComputeHardUses() {
  const std::size_t num = g_.num_nodes();
  hard_uses_.assign(num, {});
  escape_delta_.assign(num, -1);  // -1: value never escapes its loop

  for (const Node& n : g_.nodes()) {
    // Walk forward through loop-phis (the only pass-through kind left; a
    // materialized select is a hard consumer). delta = iteration distance
    // between (n, i) and the consumer instance reading its value.
    std::vector<std::tuple<NodeId, NodeId, int>> stack;  // (from, to, delta)
    std::set<std::pair<std::uint32_t, int>> seen;
    for (NodeId c : g_.consumers(n.id)) stack.emplace_back(n.id, c, 0);
    while (!stack.empty()) {
      auto [from, to, delta] = stack.back();
      stack.pop_back();
      if (delta > 8) {  // phi cycle without computation; never GC
        escape_delta_[n.id.value()] =
            std::max(escape_delta_[n.id.value()], 1000000);
        continue;
      }
      if (!seen.emplace(to.value(), delta).second) continue;
      const Node& cn = g_.node(to);
      if (cn.loop != n.loop) {
        // Read from outside the loop: an exit-value use. The value of
        // (n, i) is visible at the exit iff exit happens at i + delta.
        escape_delta_[n.id.value()] =
            std::max(escape_delta_[n.id.value()], delta);
        continue;
      }
      if (cn.kind == OpKind::kLoopPhi) {
        if (cn.inputs[1] == from) {
          // Back edge: phi_{i+delta+1} carries the value.
          for (NodeId c2 : g_.consumers(to)) {
            stack.emplace_back(to, c2, delta + 1);
          }
        }
        // Init edges come from outside the loop; not relevant for in-loop
        // garbage collection.
        continue;
      }
      if (!IsScheduledKind(cn.kind)) continue;  // kOutput handled above
      hard_uses_[n.id.value()].push_back({to, delta});
    }
  }

  // Memory-token consumers: the next same-array access reads this access's
  // completion token (program order), so an access's version must survive
  // until its successor access is covered.
  for (const MemArray& arr : g_.arrays()) {
    const auto& accesses = g_.array_accesses(arr.id);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const NodeId cur = accesses[i];
      if (i + 1 < accesses.size()) {
        hard_uses_[cur.value()].push_back({accesses[i + 1], 0});
      }
      if (i + 1 == accesses.size() && g_.node(cur).loop.valid() &&
          g_.node(accesses.front()).loop == g_.node(cur).loop) {
        hard_uses_[cur.value()].push_back({accesses.front(), 1});
      }
    }
  }
}

void SchedulerImpl::GarbageCollect(PathState& ps) {
  // Drop versions of committed iterations whose value can no longer be
  // consumed: every transitive hard consumer instance is either
  // control-pruned or already covered by a binding, no exit read can still
  // observe it, and (for condition values) the resolution has happened.
  // Exact garbage collection is what lets steady-state signatures converge,
  // closing the STG via the paper's relabeling map M.
  for (auto it = ps.available.begin(); it != ps.available.end();) {
    const Key key = it->first;
    const NodeId node(key.first);
    const int iter = key.second;
    const Node& n = g_.node(node);
    bool keep = true;
    do {
      if (!n.loop.valid()) break;  // top-level values: keep (single iter)
      const LoopState& ls = ps.loops[n.loop.value()];
      const int r = ls.base();
      if (iter >= r) break;  // live frontier / exit values
      if (g_.is_control_condition(node) && !ps.resolved.contains(key)) break;
      const int esc = escape_delta_[node.value()];
      // Exit read still possible (or, once exited, this value is what the
      // exit actually observes).
      if (esc >= 0 && iter + esc >= r) break;
      bool needed = false;
      for (const HardUse& use : hard_uses_[node.value()]) {
        const int citer = iter + use.delta;
        const Bdd ctrl = CtrlGuard(ps, use.node, citer);
        if (mgr_.IsFalse(ctrl)) continue;
        if (!InstanceCovered(ps, MakeKey(use.node, citer), ctrl,
                             /*require_completed=*/false)) {
          needed = true;
          break;
        }
      }
      keep = needed;
    } while (false);
    it = keep ? std::next(it) : ps.available.erase(it);
  }
}

bool SchedulerImpl::IsDone(const PathState& ps,
                           std::vector<OutputBinding>* outputs) {
  for (const Loop& loop : g_.loops()) {
    if (!ps.loops[loop.id.value()].exited) return false;
  }
  if (!ps.inflight.empty()) return false;

  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      const LoopState& ls = ps.loops[n.loop.value()];
      hi = g_.InLoopHeader(n.id) ? ls.exit_iter : ls.exit_iter - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!mgr_.IsTrue(ctrl)) return false;  // unresolved control remains
      // Satisfied when a single completed execution's guard covers the
      // (here, constant-true) control guard.
      if (!InstanceCovered(ps, MakeKey(n.id, iter), ctrl,
                           /*require_completed=*/true)) {
        return false;
      }
    }
  }

  outputs->clear();
  for (NodeId out : g_.outputs()) {
    const Node& n = g_.node(out);
    std::vector<ResolvedVersion> vs =
        Versions(ps, n.inputs[0], LoopId::invalid(), 0);
    const ResolvedVersion* chosen = nullptr;
    for (const ResolvedVersion& v : vs) {
      if (mgr_.IsTrue(v.guard)) {
        chosen = &v;
        break;
      }
    }
    if (chosen == nullptr) return false;
    outputs->push_back(OutputBinding{out, chosen->producer});
  }
  return true;
}

std::string SchedulerImpl::CanonGuard(Bdd guard,
                                      const std::vector<int>& bases) {
  if (mgr_.IsTrue(guard)) return "1";
  if (mgr_.IsFalse(guard)) return "0";
  // Render as a sorted sum of products over shift-canonical literal names.
  std::vector<std::string> cubes;
  for (const BddCube& cube : mgr_.ToSop(guard)) {
    std::vector<std::string> lits;
    for (const auto& [var, pos] : cube.literals) {
      // Recover (cond node, iter) for this variable.
      Key key{0, 0};
      for (const auto& [k, v] : cond_vars_) {
        if (v == var) {
          key = k;
          break;
        }
      }
      const Node& cn = g_.node(NodeId(key.first));
      const int base = cn.loop.valid()
                           ? bases[cn.loop.value()]
                           : 0;
      lits.push_back(StrCat(pos ? "" : "!", key.first, "@",
                            key.second - base));
    }
    std::sort(lits.begin(), lits.end());
    cubes.push_back(Join(lits, "&"));
  }
  std::sort(cubes.begin(), cubes.end());
  return Join(cubes, "|");
}

// ---------------------------------------------------------------------------
// Fingerprint state signatures (the hot path).
//
// The token grammar is length-prefixed throughout — every section and every
// variable-arity entry starts with a count — so the flattened u64 stream is
// prefix-unambiguous: two streams are elementwise equal iff the canonical
// state structures are equal. Guard tokens are the node indices of
// shift-canonicalized BDDs, which within one manager are equal iff the
// shifted Boolean functions are equal. This makes token-stream equality
// coincide with equality of the legacy string signature (DebugSignature
// below), which WS_CHECK_SIG verifies at runtime.

namespace {
// Section tags: high-bit-set constants so a tag can never be confused with a
// count or payload produced by the (dense, small) ids that follow it.
constexpr std::uint64_t kSigLoops = 0xf100000000000001ull;
constexpr std::uint64_t kSigResolved = 0xf100000000000002ull;
constexpr std::uint64_t kSigAvailable = 0xf100000000000003ull;
constexpr std::uint64_t kSigBindings = 0xf100000000000004ull;
constexpr std::uint64_t kSigInflight = 0xf100000000000005ull;
constexpr std::uint64_t kSigLatched = 0xf100000000000006ull;
constexpr std::uint64_t kSigPending = 0xf100000000000007ull;

// Signed-int token: sign-extended into the u64 space (shifted iterations can
// be negative once a loop has exited).
constexpr std::uint64_t IntToken(int v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
}
}  // namespace

void SchedulerImpl::PrepareShift(const std::vector<int>& bases) {
  shift_identity_ = true;
  for (const int b : bases) {
    if (b != 0) shift_identity_ = false;
  }
  shift_epoch_open_ = false;
  if (shift_identity_) return;

  // Dense var -> shifted var map. Building it may mint new condition
  // variables for shifted (even negative) iterations, which mutates
  // cond_vars_; collect the targets first, then create. Variables at
  // negative iterations are themselves shift targets minted by earlier
  // probes — they never occur in a real guard (CondLit only mints
  // iteration >= 0), so they are skipped rather than re-shifted (otherwise
  // every probe would mint shifted copies of the previous probe's targets
  // and the variable universe would snowball).
  shift_var_map_.assign(static_cast<std::size_t>(mgr_.num_vars()), -1);
  std::vector<std::pair<int, Key>>& wanted = shift_wanted_;
  wanted.clear();
  for (const auto& [key, var] : cond_vars_) {
    if (key.second < 0) continue;  // synthetic shift target
    const Node& cn = g_.node(NodeId(key.first));
    if (!cn.loop.valid()) continue;
    const int base = bases[cn.loop.value()];
    if (base == 0) continue;
    wanted.emplace_back(var, Key{key.first, key.second - base});
  }
  for (const auto& [var, skey] : wanted) {
    const int shifted = CondVar(NodeId(skey.first), skey.second);
    shift_var_map_[static_cast<std::size_t>(var)] = shifted;
  }
}

std::uint64_t SchedulerImpl::GuardToken(Bdd guard) {
  if (shift_identity_ || mgr_.IsTrue(guard) || mgr_.IsFalse(guard)) {
    return guard.index();
  }
  const Bdd renamed =
      mgr_.RenameDense(guard, shift_var_map_, /*fresh_map=*/!shift_epoch_open_);
  shift_epoch_open_ = true;
  return renamed.index();
}

void SchedulerImpl::TokenizeState(const PathState& ps,
                                  std::vector<int>* bases_out) {
  std::vector<int>& bases = *bases_out;
  bases.assign(static_cast<std::size_t>(g_.num_loops()), 0);
  for (const Loop& loop : g_.loops()) {
    bases[loop.id.value()] = ps.loops[loop.id.value()].base();
  }
  PrepareShift(bases);

  std::vector<std::uint64_t>& t = sig_tokens_;
  t.clear();
  auto begin_count = [&]() {
    t.push_back(0);
    return t.size() - 1;
  };

  auto shift = [&](const Key& key) -> std::pair<std::uint32_t, int> {
    const Node& n = g_.node(NodeId(key.first));
    const int base = n.loop.valid() ? bases[n.loop.value()] : 0;
    return {key.first, key.second - base};
  };
  auto push_key = [&](const Key& key) {
    const auto [node, iter] = shift(key);
    t.push_back(node);
    t.push_back(IntToken(iter));
  };
  auto push_ref = [&](const InstRef& ref) {
    push_key(MakeKey(ref));
    t.push_back(IntToken(ref.version));
  };

  // Pending required work in the committed region (kept explicit so states
  // are never merged across unfinished obligations). Computed first because
  // the resolution section below keeps only history that pending work can
  // still observe; emitted last to mirror the legacy section order.
  pending_iters_.clear();
  std::vector<std::uint64_t>& pend_tokens = pend_tokens_;
  pend_tokens.clear();
  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      hi = bases[n.loop.value()] - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!InstanceCovered(ps, MakeKey(n.id, iter), ctrl,
                           /*require_completed=*/false)) {
        const auto [node, siter] = shift(MakeKey(n.id, iter));
        pend_tokens.push_back(node);
        pend_tokens.push_back(IntToken(siter));
        if (n.loop.valid()) {
          pending_iters_.emplace_back(n.loop.value(), iter);
        }
      }
    }
  }
  std::sort(pending_iters_.begin(), pending_iters_.end());
  pending_iters_.erase(
      std::unique(pending_iters_.begin(), pending_iters_.end()),
      pending_iters_.end());
  auto pending_contains = [&](int loop, int iter) {
    return std::binary_search(pending_iters_.begin(), pending_iters_.end(),
                              std::pair<int, int>{loop, iter});
  };

  t.push_back(kSigLoops);
  for (const Loop& loop : g_.loops()) {
    t.push_back(ps.loops[loop.id.value()].exited ? 1u : 0u);
  }

  t.push_back(kSigResolved);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, value] : ps.resolved) {
      const NodeId cn(key.first);
      const Node& cnode = g_.node(cn);
      if (cnode.loop.valid()) {
        const LoopState& ls = ps.loops[cnode.loop.value()];
        // Loop-condition resolutions are fully derivable from the frontier
        // position (true below next_unresolved / exit_iter, false at the
        // exit), so they never appear.
        if (is_loop_cond_[cn.value()]) continue;
        // Other in-loop resolutions matter only at the frontier or where
        // pending work still consults them.
        if (key.second < ls.base() &&
            !pending_contains(cnode.loop.value(), key.second)) {
          continue;
        }
      }
      push_key(key);
      t.push_back(value ? 1u : 0u);
      ++t[count_at];
    }
  }

  t.push_back(kSigAvailable);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, versions] : ps.available) {
      push_key(key);
      t.push_back(versions.size());
      for (const VersionRec& v : versions) {
        t.push_back(IntToken(v.version));
        t.push_back(GuardToken(BindingGuard(ps, key, v.version)));
      }
      ++t[count_at];
    }
  }

  t.push_back(kSigBindings);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, blist] : ps.bindings) {
      // A binding list is future-relevant only while an execution is still in
      // flight or the instance is not fully covered (new candidates may still
      // be generated and deduplicated against it). Fully covered, completed
      // instances influence the future only through their published versions,
      // which the available section already canonicalizes — omitting them
      // here is what lets steady-state signatures converge.
      bool in_flight = false;
      for (const Binding& b : blist) {
        if (!b.completed && !mgr_.IsFalse(b.guard)) in_flight = true;
      }
      const Bdd ctrl = CtrlGuard(ps, NodeId(key.first), key.second);
      if (!in_flight &&
          InstanceCovered(ps, key, ctrl, /*require_completed=*/false)) {
        continue;
      }
      push_key(key);
      const std::size_t nlive_at = begin_count();
      for (std::size_t v = 0; v < blist.size(); ++v) {
        const Binding& b = blist[v];
        if (mgr_.IsFalse(b.guard)) continue;  // scrubbed mispredictions
        t.push_back(v);
        t.push_back(b.operands.size());
        for (const InstRef& ref : b.operands) push_ref(ref);
        t.push_back(GuardToken(b.guard));
        t.push_back(b.completed ? 1u : 0u);
        ++t[nlive_at];
      }
      ++t[count_at];
    }
  }

  t.push_back(kSigInflight);
  {
    const std::size_t count_at = begin_count();
    for (const InFlight& f : ps.inflight) {
      push_ref(f.inst);
      t.push_back(IntToken(f.remaining));
      t.push_back(GuardToken(f.guard));
      ++t[count_at];
    }
  }

  t.push_back(kSigLatched);
  {
    const std::size_t count_at = begin_count();
    for (const auto& [key, versions] : ps.latched) {
      push_key(key);
      t.push_back(versions.size());
      for (const LatchedVersion& v : versions) {
        t.push_back(IntToken(v.version));
        t.push_back(GuardToken(BindingGuard(ps, key, v.version)));
      }
      ++t[count_at];
    }
  }

  t.push_back(kSigPending);
  t.push_back(pend_tokens.size());
  t.insert(t.end(), pend_tokens.begin(), pend_tokens.end());
}

std::string SchedulerImpl::DebugSignature(const PathState& ps,
                                          std::vector<int>* bases_out) {
  std::vector<int> bases(g_.num_loops(), 0);
  for (const Loop& loop : g_.loops()) {
    bases[loop.id.value()] = ps.loops[loop.id.value()].base();
  }
  *bases_out = bases;

  auto shift = [&](const Key& key) -> std::pair<std::uint32_t, int> {
    const Node& n = g_.node(NodeId(key.first));
    const int base = n.loop.valid() ? bases[n.loop.value()] : 0;
    return {key.first, key.second - base};
  };
  auto shift_ref = [&](const InstRef& ref) -> std::string {
    const auto [node, iter] = shift(MakeKey(ref));
    return StrCat(node, "_", iter, ".", ref.version);
  };

  // Pending required work in the committed region (kept explicit so states
  // are never merged across unfinished obligations). Computed first because
  // the resolution section below keeps only history that pending work can
  // still observe.
  std::ostringstream pend;
  std::set<Key> pending_iters;  // (loop value, iter) with pending work
  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      hi = bases[n.loop.value()] - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!InstanceCovered(ps, MakeKey(n.id, iter), ctrl,
                           /*require_completed=*/false)) {
        const auto [node, siter] = shift(MakeKey(n.id, iter));
        pend << node << "_" << siter << ";";
        if (n.loop.valid()) {
          pending_iters.emplace(n.loop.value(), iter);
        }
      }
    }
  }

  std::ostringstream os;
  for (const Loop& loop : g_.loops()) {
    const LoopState& ls = ps.loops[loop.id.value()];
    os << "L" << loop.id.value() << (ls.exited ? "X" : "O") << ";";
  }

  std::set<Key> loop_conds;
  for (const Loop& loop : g_.loops()) {
    loop_conds.emplace(loop.cond.value(), 0);
  }
  auto is_loop_cond = [&](NodeId n) {
    return loop_conds.contains({n.value(), 0});
  };

  os << "|R:";
  for (const auto& [key, value] : ps.resolved) {
    const NodeId cn(key.first);
    const Node& cnode = g_.node(cn);
    if (cnode.loop.valid()) {
      const LoopState& ls = ps.loops[cnode.loop.value()];
      // Loop-condition resolutions are fully derivable from the frontier
      // position (true below next_unresolved / exit_iter, false at the
      // exit), so they never appear.
      if (is_loop_cond(cn)) continue;
      // Other in-loop resolutions matter only at the frontier or where
      // pending work still consults them.
      if (key.second < ls.base() &&
          !pending_iters.contains({cnode.loop.value(), key.second})) {
        continue;
      }
    }
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "=" << value << ";";
  }

  os << "|A:";
  for (const auto& [key, versions] : ps.available) {
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "[";
    for (const VersionRec& v : versions) {
      os << v.version << ":"
         << CanonGuard(BindingGuard(ps, key, v.version), bases) << ",";
    }
    os << "];";
  }

  os << "|B:";
  for (const auto& [key, blist] : ps.bindings) {
    // A binding list is future-relevant only while an execution is still in
    // flight or the instance is not fully covered (new candidates may still
    // be generated and deduplicated against it). Fully covered, completed
    // instances influence the future only through their published versions,
    // which the A section already canonicalizes — omitting them here is
    // what lets steady-state signatures converge.
    bool in_flight = false;
    for (const Binding& b : blist) {
      if (!b.completed && !mgr_.IsFalse(b.guard)) in_flight = true;
    }
    const Bdd ctrl = CtrlGuard(ps, NodeId(key.first), key.second);
    if (!in_flight &&
        InstanceCovered(ps, key, ctrl, /*require_completed=*/false)) {
      continue;
    }
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "[";
    for (std::size_t v = 0; v < blist.size(); ++v) {
      const Binding& b = blist[v];
      if (mgr_.IsFalse(b.guard)) continue;  // scrubbed mispredictions
      os << v << ":(";
      for (const InstRef& ref : b.operands) os << shift_ref(ref) << ",";
      os << ")" << CanonGuard(b.guard, bases) << (b.completed ? "C" : "F")
         << ";";
    }
    os << "];";
  }

  os << "|I:";
  for (const InFlight& f : ps.inflight) {
    os << shift_ref(f.inst) << "r" << f.remaining << ":"
       << CanonGuard(f.guard, bases) << ";";
  }

  os << "|L:";
  for (const auto& [key, versions] : ps.latched) {
    const auto [node, iter] = shift(key);
    os << node << "_" << iter << "[";
    for (const LatchedVersion& v : versions) {
      os << v.version << ":"
         << CanonGuard(BindingGuard(ps, key, v.version), bases) << ",";
    }
    os << "];";
  }

  os << "|P:" << pend.str();

  return os.str();
}

SchedulerImpl::GetResult SchedulerImpl::CreateOrGet(PathState ps) {
  const PhaseTimer timer(&stats_.phase.closure_ns);
  std::vector<int> bases;
  TokenizeState(ps, &bases);

  FpHasher hasher;
  for (const std::uint64_t token : sig_tokens_) hasher.Mix(token);
  const Fp128 fp = hasher.digest();

  if (std::getenv("WS_DEBUG_SIG") != nullptr) {
    std::vector<int> dbg_bases;
    std::fprintf(stderr, "SIG[%d] fp=%016llx%016llx: %s\n",
                 stats_.states_created,
                 static_cast<unsigned long long>(fp.hi),
                 static_cast<unsigned long long>(fp.lo),
                 DebugSignature(ps, &dbg_bases).c_str());
  }

  std::vector<CanonEntry>& bucket = canon_[fp];
  const CanonEntry* match = nullptr;
  for (const CanonEntry& entry : bucket) {
    if (entry.tokens == sig_tokens_) {
      match = &entry;
      break;
    }
    // Same 128-bit fingerprint, different canonical state: resolved exactly
    // by the token comparison, counted for visibility.
    stats_.signature_collisions++;
  }

  if (check_signatures_) {
    // Cross-validate the fingerprint decision against the legacy string
    // signature: both paths must agree on whether this state is new and on
    // which state it folds onto.
    std::vector<int> legacy_bases;
    const std::string legacy = DebugSignature(ps, &legacy_bases);
    auto lit = canon_check_.find(legacy);
    WS_CHECK_MSG((match != nullptr) == (lit != canon_check_.end()),
                 "fingerprint/legacy closure disagreement for: " << legacy);
    if (match != nullptr) {
      WS_CHECK_MSG(match->sid == lit->second,
                   "fingerprint folded onto state "
                       << match->sid.value() << " but legacy says "
                       << lit->second.value() << " for: " << legacy);
    }
  }

  if (match != nullptr) {
    GetResult r;
    r.sid = match->sid;
    for (const Loop& loop : g_.loops()) {
      const int delta =
          bases[loop.id.value()] - match->bases[loop.id.value()];
      if (delta != 0) r.shift.emplace_back(loop.id, delta);
    }
    stats_.closure_hits++;
    return r;
  }

  GetResult r;
  r.sid = stg_.AddState();
  r.fresh = true;
  stats_.states_created++;
  WS_CHECK_MSG(stats_.states_created <= opts_.max_states,
               "state cap exceeded (" << opts_.max_states
                                      << "); no closure found");
  bucket.push_back(CanonEntry{sig_tokens_, r.sid, bases});
  if (check_signatures_) {
    std::vector<int> legacy_bases;
    canon_check_.emplace(DebugSignature(ps, &legacy_bases), r.sid);
  }
  worklist_.emplace_back(r.sid, std::move(ps));
  return r;
}

ScheduleResult SchedulerImpl::Run() {
  const auto run_start = std::chrono::steady_clock::now();
  lambda_ = ComputeLambda(g_, lib_);
  ComputeHardUses();

  is_loop_cond_.assign(g_.num_nodes(), false);
  for (const Loop& loop : g_.loops()) {
    is_loop_cond_[loop.cond.value()] = true;
  }

  // Speculative stores are forbidden; conditional memory accesses would make
  // the token chain control-dependent, which this scheduler does not model.
  for (const Node& n : g_.nodes()) {
    if (n.kind == OpKind::kMemRead || n.kind == OpKind::kMemWrite) {
      WS_CHECK_MSG(n.ctrl.empty(),
                   "memory access " << n.name
                                    << " must be unconditional in its scope");
    }
  }

  PathState initial;
  initial.loops.resize(g_.num_loops());
  const GetResult entry = CreateOrGet(std::move(initial));
  stg_.set_entry(entry.sid);

  while (!worklist_.empty()) {
    CheckCancellation();
    auto [sid, ps] = std::move(worklist_.front());
    worklist_.pop_front();

    FillState(sid, ps);
    if (stg_.state(sid).ops.empty() && ps.inflight.empty()) {
      std::vector<OutputBinding> outs;
      if (!IsDone(ps, &outs)) {
        std::vector<int> bases;
        WS_THROW("deadlock: state "
                 << sid.value()
                 << " schedules nothing but work remains (check "
                    "allocation); state: "
                 << DebugSignature(ps, &bases));
      }
    }

    std::vector<CondLiteral> cube;
    std::vector<Leaf> leaves;
    {
      const PhaseTimer timer(&stats_.phase.cofactor_ns);
      PartitionLeaves(ps, cube, leaves, 0);
    }

    // Merge leaves that land on the same successor (same target, same
    // relabel shift, and — for stop edges — the same output bindings).
    std::map<std::string, std::size_t> merged;  // key -> index in state.out
    for (Leaf& leaf : leaves) {
      {
        const PhaseTimer timer(&stats_.phase.gc_ns);
        GarbageCollect(leaf.ps);
      }
      std::vector<OutputBinding> outs;
      StateId target;
      std::vector<std::pair<LoopId, int>> shift;
      if (IsDone(leaf.ps, &outs)) {
        target = stg_.AddStopState();
      } else {
        const GetResult r = CreateOrGet(std::move(leaf.ps));
        target = r.sid;
        shift = r.shift;
      }
      std::string mkey = StrCat("t", target.value(), "/");
      for (const auto& [loop, delta] : shift) {
        mkey += StrCat(loop.value(), ":", delta, ";");
      }
      for (const OutputBinding& ob : outs) {
        mkey += StrCat("o", ob.output.value(), "=", ob.value.node.value(),
                       "_", ob.value.iter, ".", ob.value.version, ";");
      }
      // Note: CreateOrGet/AddStopState may grow the state vector, so the
      // source state must be re-fetched on every use.
      auto mit = merged.find(mkey);
      if (mit != merged.end()) {
        stg_.state(sid).out[mit->second].cubes.push_back(leaf.cube);
      } else {
        Transition t;
        t.from = sid;
        t.to = target;
        t.cubes.push_back(leaf.cube);
        t.iter_shift = shift;
        t.outputs = std::move(outs);
        merged.emplace(mkey, stg_.state(sid).out.size());
        stg_.state(sid).out.push_back(std::move(t));
      }
    }
  }

  stg_.Validate();
  stats_.bdd_ops = mgr_.num_ops();
  stats_.bdd_nodes = mgr_.num_nodes();
  stats_.phase.total_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - run_start)
          .count();
  return ScheduleResult{std::move(stg_), stats_};
}

}  // namespace

Status SchedulerOptions::Validate() const {
  if (lookahead < 0) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: lookahead must be >= 0, got ", lookahead));
  }
  if (gc_window < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: gc_window must be >= 1, got ", gc_window));
  }
  if (max_states < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: max_states must be >= 1, got ",
               max_states));
  }
  if (max_ops_per_state < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: max_ops_per_state must be >= 1, got ",
               max_ops_per_state));
  }
  if (!(clock.period_ns > 0.0)) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: clock period must be > 0, got ",
               clock.period_ns));
  }
  return Status::Ok();
}

Result<ScheduleReport> ScheduleOrError(const ScheduleRequest& request) {
  if (request.graph == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: graph is null");
  }
  if (request.library == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: library is null");
  }
  if (request.allocation == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: allocation is null");
  }
  if (const Status s = request.options.Validate(); !s.ok()) return s;
  try {
    SchedulerImpl impl(*request.graph, *request.library, *request.allocation,
                       request.options);
    return impl.Run();
  } catch (const DeadlineExceededError& e) {
    return Status::MakeError(StatusCode::kDeadlineExceeded, e.what());
  } catch (const CancelledError& e) {
    return Status::MakeError(StatusCode::kCancelled, e.what());
  } catch (const Error& e) {
    return Status::MakeError(e.what());
  }
}

ScheduleResult Schedule(const Cdfg& g, const FuLibrary& lib,
                        const Allocation& alloc,
                        const SchedulerOptions& options) {
  ScheduleRequest request;
  request.graph = &g;
  request.library = &lib;
  request.allocation = &alloc;
  request.options = options;
  Result<ScheduleReport> result = ScheduleOrError(request);
  if (!result.ok()) {
    // Re-enter the throwing world with the carried Status intact: the code
    // picks the exception type (deadline/cancel stay distinguishable) and
    // the message is ScheduleOrError's, verbatim.
    result.status().ThrowIfError();
  }
  return *std::move(result);
}

}  // namespace ws
