// The engine driver. The algorithmic layers live in their own modules —
// guard algebra in sched/guards.cc, successor computation in
// sched/candidates.cc, fork-time validation/invalidation in sched/fork.cc,
// closure detection in sched/closure.cc, selection policies in
// sched/policy.cc. What remains here is the per-run orchestration: the
// worklist loop, greedy candidate admission against the resource/clock
// constraints, frontier garbage collection, termination detection, and the
// public entry points.
#include "sched/scheduler.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/phase_timer.h"
#include "base/strings.h"
#include "bdd/bdd.h"
#include "sched/candidates.h"
#include "sched/closure.h"
#include "sched/engine_state.h"
#include "sched/fork.h"
#include "sched/guards.h"
#include "sched/lambda.h"
#include "sched/policy.h"

namespace ws {

const char* SpeculationModeName(SpeculationMode mode) {
  switch (mode) {
    case SpeculationMode::kWavesched: return "wavesched";
    case SpeculationMode::kSinglePath: return "single-path";
    case SpeculationMode::kWaveschedSpec: return "wavesched-spec";
  }
  return "?";
}

namespace {

class SchedulerImpl {
 public:
  SchedulerImpl(const Cdfg& g, const FuLibrary& lib, const Allocation& alloc,
                const SchedulerOptions& options)
      : g_(g),
        lib_(lib),
        alloc_(alloc),
        opts_(options),
        stg_(g.name()),
        guards_(g, mgr_),
        policy_(MakeSelectionPolicy(options.policy)),
        candidates_(g, lib, options, mgr_, guards_, *policy_, lambda_,
                    stats_),
        fork_(g, mgr_, guards_, stats_),
        closure_(g, mgr_, guards_, stats_) {}

  ScheduleResult Run();

 private:
  // Cooperative cancellation: polls the caller-owned cancel flag and the
  // deadline. Called once per worklist state and once per candidate
  // admission pass, so a run is abandoned within one state's work of the
  // trigger and never yields a partial STG.
  void CheckCancellation() const {
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      throw CancelledError("schedule cancelled by caller");
    }
    if (opts_.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *opts_.deadline) {
      throw DeadlineExceededError("schedule deadline exceeded");
    }
  }

  void FillState(StateId sid, PathState& ps);

  // --- Lifecycle ----------------------------------------------------------------
  struct HardUse {
    NodeId node;
    int delta;
  };
  void ComputeHardUses();
  void GarbageCollect(PathState& ps);
  bool IsDone(const PathState& ps, std::vector<OutputBinding>* outputs);

  struct GetResult {
    StateId sid;
    std::vector<std::pair<LoopId, int>> shift;
    bool fresh = false;
  };
  GetResult CreateOrGet(PathState ps);

  // --- Members -------------------------------------------------------------------
  const Cdfg& g_;
  const FuLibrary& lib_;
  const Allocation& alloc_;
  const SchedulerOptions& opts_;

  BddManager mgr_;
  Stg stg_;
  ScheduleStats stats_;

  std::vector<double> lambda_;
  std::vector<std::vector<HardUse>> hard_uses_;  // by node
  std::vector<int> escape_delta_;                // by node; -1 = no escape

  // The engine layers. Construction order matters: every layer borrows
  // guards_ (and candidates_ additionally borrows policy_ and lambda_ — the
  // latter an empty vector until Run() fills it, which is fine because the
  // reference binds to the vector object, not its contents).
  GuardEngine guards_;
  std::unique_ptr<SelectionPolicyImpl> policy_;
  CandidateGenerator candidates_;
  ForkEngine fork_;
  ClosureDetector closure_;

  std::deque<std::pair<StateId, PathState>> worklist_;
};

void SchedulerImpl::FillState(StateId sid, PathState& ps) {
  State& state = stg_.state(sid);

  // Resource occupancy for this cycle.
  std::vector<int> initiations(static_cast<std::size_t>(lib_.num_types()), 0);
  std::vector<int> active(static_cast<std::size_t>(lib_.num_types()), 0);

  // Place continuations of in-flight multi-cycle operations.
  std::vector<InFlight> still_flying;
  std::vector<std::pair<InstKey, int>> completions;  // (key, version)
  for (InFlight& f : ps.inflight) {
    ScheduledOp op;
    op.inst = f.inst;
    op.guard = ps.bindings[MakeInstKey(f.inst)]
                   [static_cast<std::size_t>(f.inst.version)]
                       .guard_at_schedule;
    op.fu_type = f.fu_type;
    op.stage = f.latency - f.remaining;
    state.ops.push_back(op);
    if (!lib_.type(f.fu_type).pipelined) {
      active[static_cast<std::size_t>(f.fu_type)]++;
    }
    if (--f.remaining == 0) {
      completions.emplace_back(MakeInstKey(f.inst), f.inst.version);
    } else {
      still_flying.push_back(f);
    }
  }
  ps.inflight = std::move(still_flying);

  // Greedy admission in policy-priority order (Eq. 5 criticality under the
  // default policy), regenerating candidates after each admission so newly
  // chainable consumers are considered. The candidate vector lives outside
  // the loop so its capacity is reused.
  std::vector<Candidate> cands;
  for (;;) {
    if (static_cast<int>(state.ops.size()) >= opts_.max_ops_per_state) break;
    CheckCancellation();
    candidates_.GenerateCandidates(ps, &cands);

    // Admission filters: resources and clock period. The surviving argmax
    // (with its deterministic tie-break) is the policy's Step 3 decision,
    // attributed to select_ns.
    const Candidate* best = nullptr;
    {
      const PhaseTimer select_timer(&stats_.phase.select_ns);
      for (const Candidate& c : cands) {
        const int t = c.fu_type;
        const int count = alloc_.Count(t);
        if (count != Allocation::kUnlimited) {
          if (initiations[static_cast<std::size_t>(t)] >= count) continue;
          if (!lib_.type(t).pipelined &&
              active[static_cast<std::size_t>(t)] +
                      initiations[static_cast<std::size_t>(t)] >=
                  count) {
            continue;
          }
        }
        if (c.start_offset > 0.0) {
          if (!opts_.clock.allow_chaining) continue;
          if (c.latency > 1) continue;  // multi-cycle starts at a boundary
        }
        if (!opts_.clock.Fits(c.start_offset, c.delay)) continue;
        if (best == nullptr || BetterCandidate(c, *best)) {
          best = &c;
        }
      }
    }
    if (best == nullptr) break;

    // Admit.
    const InstKey key = MakeInstKey(best->node, best->iter);
    auto& blist = ps.bindings[key];
    const int version = static_cast<int>(blist.size());
    Binding b;
    b.operands = best->operands;
    b.guard = best->guard;
    b.guard_at_schedule = mgr_.ToString(best->guard);
    blist.push_back(std::move(b));

    initiations[static_cast<std::size_t>(best->fu_type)]++;

    ScheduledOp op;
    op.inst = InstRef{best->node, best->iter, version};
    op.operands = best->operands;
    op.guard = blist.back().guard_at_schedule;
    op.fu_type = best->fu_type;
    op.stage = 0;
    op.start_offset_ns = best->start_offset;
    state.ops.push_back(op);
    stats_.total_ops++;
    if (!mgr_.IsTrue(best->guard)) stats_.speculative_ops++;

    if (best->latency == 1) {
      // Completes this cycle: publish immediately so later admissions in
      // this same state may chain off it.
      blist.back().completed = true;
      ps.available[key].push_back(
          {version, best->start_offset + best->delay});
      if (g_.is_control_condition(best->node)) {
        ps.latched[key].push_back({version});
      }
    } else {
      InFlight f;
      f.inst = op.inst;
      f.guard = best->guard;
      f.remaining = best->latency - 1;
      f.latency = best->latency;
      f.fu_type = best->fu_type;
      ps.inflight.push_back(f);
    }
  }

  // Multi-cycle completions land at the end of this cycle.
  for (const auto& [key, version] : completions) {
    auto& blist = ps.bindings[key];
    blist[static_cast<std::size_t>(version)].completed = true;
    ps.available[key].push_back({version, 0.0});
    if (g_.is_control_condition(
            NodeId(key.first))) {
      ps.latched[key].push_back({version});
    }
  }

  // Reset chaining offsets: results are registered at the cycle boundary.
  for (auto& [key, versions] : ps.available) {
    for (VersionRec& v : versions) v.ready_offset = 0.0;
  }
}

void SchedulerImpl::ComputeHardUses() {
  const std::size_t num = g_.num_nodes();
  hard_uses_.assign(num, {});
  escape_delta_.assign(num, -1);  // -1: value never escapes its loop

  for (const Node& n : g_.nodes()) {
    // Walk forward through loop-phis (the only pass-through kind left; a
    // materialized select is a hard consumer). delta = iteration distance
    // between (n, i) and the consumer instance reading its value.
    std::vector<std::tuple<NodeId, NodeId, int>> stack;  // (from, to, delta)
    std::set<std::pair<std::uint32_t, int>> seen;
    for (NodeId c : g_.consumers(n.id)) stack.emplace_back(n.id, c, 0);
    while (!stack.empty()) {
      auto [from, to, delta] = stack.back();
      stack.pop_back();
      if (delta > 8) {  // phi cycle without computation; never GC
        escape_delta_[n.id.value()] =
            std::max(escape_delta_[n.id.value()], 1000000);
        continue;
      }
      if (!seen.emplace(to.value(), delta).second) continue;
      const Node& cn = g_.node(to);
      if (cn.loop != n.loop) {
        // Read from outside the loop: an exit-value use. The value of
        // (n, i) is visible at the exit iff exit happens at i + delta.
        escape_delta_[n.id.value()] =
            std::max(escape_delta_[n.id.value()], delta);
        continue;
      }
      if (cn.kind == OpKind::kLoopPhi) {
        if (cn.inputs[1] == from) {
          // Back edge: phi_{i+delta+1} carries the value.
          for (NodeId c2 : g_.consumers(to)) {
            stack.emplace_back(to, c2, delta + 1);
          }
        }
        // Init edges come from outside the loop; not relevant for in-loop
        // garbage collection.
        continue;
      }
      if (!IsScheduledKind(cn.kind)) continue;  // kOutput handled above
      hard_uses_[n.id.value()].push_back({to, delta});
    }
  }

  // Memory-token consumers: the next same-array access reads this access's
  // completion token (program order), so an access's version must survive
  // until its successor access is covered.
  for (const MemArray& arr : g_.arrays()) {
    const auto& accesses = g_.array_accesses(arr.id);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const NodeId cur = accesses[i];
      if (i + 1 < accesses.size()) {
        hard_uses_[cur.value()].push_back({accesses[i + 1], 0});
      }
      if (i + 1 == accesses.size() && g_.node(cur).loop.valid() &&
          g_.node(accesses.front()).loop == g_.node(cur).loop) {
        hard_uses_[cur.value()].push_back({accesses.front(), 1});
      }
    }
  }
}

void SchedulerImpl::GarbageCollect(PathState& ps) {
  // Drop versions of committed iterations whose value can no longer be
  // consumed: every transitive hard consumer instance is either
  // control-pruned or already covered by a binding, no exit read can still
  // observe it, and (for condition values) the resolution has happened.
  // Exact garbage collection is what lets steady-state signatures converge,
  // closing the STG via the paper's relabeling map M.
  for (auto it = ps.available.begin(); it != ps.available.end();) {
    const InstKey key = it->first;
    const NodeId node(key.first);
    const int iter = key.second;
    const Node& n = g_.node(node);
    bool keep = true;
    do {
      if (!n.loop.valid()) break;  // top-level values: keep (single iter)
      const LoopState& ls = ps.loops[n.loop.value()];
      const int r = ls.base();
      if (iter >= r) break;  // live frontier / exit values
      if (g_.is_control_condition(node) && !ps.resolved.contains(key)) break;
      const int esc = escape_delta_[node.value()];
      // Exit read still possible (or, once exited, this value is what the
      // exit actually observes).
      if (esc >= 0 && iter + esc >= r) break;
      bool needed = false;
      for (const HardUse& use : hard_uses_[node.value()]) {
        const int citer = iter + use.delta;
        const Bdd ctrl = guards_.CtrlGuard(ps, use.node, citer);
        if (mgr_.IsFalse(ctrl)) continue;
        if (!guards_.InstanceCovered(ps, MakeInstKey(use.node, citer), ctrl,
                                     /*require_completed=*/false)) {
          needed = true;
          break;
        }
      }
      keep = needed;
    } while (false);
    it = keep ? std::next(it) : ps.available.erase(it);
  }
}

bool SchedulerImpl::IsDone(const PathState& ps,
                           std::vector<OutputBinding>* outputs) {
  for (const Loop& loop : g_.loops()) {
    if (!ps.loops[loop.id.value()].exited) return false;
  }
  if (!ps.inflight.empty()) return false;

  for (const Node& n : g_.nodes()) {
    if (!IsScheduledKind(n.kind)) continue;
    int hi = 0;
    if (n.loop.valid()) {
      const LoopState& ls = ps.loops[n.loop.value()];
      hi = g_.InLoopHeader(n.id) ? ls.exit_iter : ls.exit_iter - 1;
    }
    for (int iter = 0; iter <= hi; ++iter) {
      const Bdd ctrl = guards_.CtrlGuard(ps, n.id, iter);
      if (mgr_.IsFalse(ctrl)) continue;
      if (!mgr_.IsTrue(ctrl)) return false;  // unresolved control remains
      // Satisfied when a single completed execution's guard covers the
      // (here, constant-true) control guard.
      if (!guards_.InstanceCovered(ps, MakeInstKey(n.id, iter), ctrl,
                                   /*require_completed=*/true)) {
        return false;
      }
    }
  }

  outputs->clear();
  for (NodeId out : g_.outputs()) {
    const Node& n = g_.node(out);
    std::vector<ResolvedVersion> vs =
        candidates_.Versions(ps, n.inputs[0], LoopId::invalid(), 0);
    const ResolvedVersion* chosen = nullptr;
    for (const ResolvedVersion& v : vs) {
      if (mgr_.IsTrue(v.guard)) {
        chosen = &v;
        break;
      }
    }
    if (chosen == nullptr) return false;
    outputs->push_back(OutputBinding{out, chosen->producer});
  }
  return true;
}

SchedulerImpl::GetResult SchedulerImpl::CreateOrGet(PathState ps) {
  const PhaseTimer timer(&stats_.phase.closure_ns);
  if (std::optional<ClosureDetector::Hit> hit = closure_.Lookup(ps)) {
    return GetResult{hit->sid, std::move(hit->shift), /*fresh=*/false};
  }

  GetResult r;
  r.sid = stg_.AddState();
  r.fresh = true;
  stats_.states_created++;
  WS_CHECK_MSG(stats_.states_created <= opts_.max_states,
               "state cap exceeded (" << opts_.max_states
                                      << "); no closure found");
  closure_.Insert(r.sid, ps);
  worklist_.emplace_back(r.sid, std::move(ps));
  return r;
}

ScheduleResult SchedulerImpl::Run() {
  const auto run_start = std::chrono::steady_clock::now();
  lambda_ = ComputeLambda(g_, lib_);
  ComputeHardUses();

  // Speculative stores are forbidden; conditional memory accesses would make
  // the token chain control-dependent, which this scheduler does not model.
  for (const Node& n : g_.nodes()) {
    if (n.kind == OpKind::kMemRead || n.kind == OpKind::kMemWrite) {
      WS_CHECK_MSG(n.ctrl.empty(),
                   "memory access " << n.name
                                    << " must be unconditional in its scope");
    }
  }

  PathState initial;
  initial.loops.resize(g_.num_loops());
  const GetResult entry = CreateOrGet(std::move(initial));
  stg_.set_entry(entry.sid);

  while (!worklist_.empty()) {
    CheckCancellation();
    auto [sid, ps] = std::move(worklist_.front());
    worklist_.pop_front();

    FillState(sid, ps);
    if (stg_.state(sid).ops.empty() && ps.inflight.empty()) {
      std::vector<OutputBinding> outs;
      if (!IsDone(ps, &outs)) {
        std::vector<int> bases;
        WS_THROW("deadlock: state "
                 << sid.value()
                 << " schedules nothing but work remains (check "
                    "allocation); state: "
                 << closure_.DebugSignature(ps, &bases));
      }
    }

    std::vector<CondLiteral> cube;
    std::vector<ForkEngine::Leaf> leaves;
    {
      const PhaseTimer timer(&stats_.phase.cofactor_ns);
      fork_.PartitionLeaves(ps, cube, leaves, 0);
    }

    // Merge leaves that land on the same successor (same target, same
    // relabel shift, and — for stop edges — the same output bindings).
    std::map<std::string, std::size_t> merged;  // key -> index in state.out
    for (ForkEngine::Leaf& leaf : leaves) {
      {
        const PhaseTimer timer(&stats_.phase.gc_ns);
        GarbageCollect(leaf.ps);
      }
      std::vector<OutputBinding> outs;
      StateId target;
      std::vector<std::pair<LoopId, int>> shift;
      if (IsDone(leaf.ps, &outs)) {
        target = stg_.AddStopState();
      } else {
        const GetResult r = CreateOrGet(std::move(leaf.ps));
        target = r.sid;
        shift = r.shift;
      }
      std::string mkey = StrCat("t", target.value(), "/");
      for (const auto& [loop, delta] : shift) {
        mkey += StrCat(loop.value(), ":", delta, ";");
      }
      for (const OutputBinding& ob : outs) {
        mkey += StrCat("o", ob.output.value(), "=", ob.value.node.value(),
                       "_", ob.value.iter, ".", ob.value.version, ";");
      }
      // Note: CreateOrGet/AddStopState may grow the state vector, so the
      // source state must be re-fetched on every use.
      auto mit = merged.find(mkey);
      if (mit != merged.end()) {
        stg_.state(sid).out[mit->second].cubes.push_back(leaf.cube);
      } else {
        Transition t;
        t.from = sid;
        t.to = target;
        t.cubes.push_back(leaf.cube);
        t.iter_shift = shift;
        t.outputs = std::move(outs);
        merged.emplace(mkey, stg_.state(sid).out.size());
        stg_.state(sid).out.push_back(std::move(t));
      }
    }
  }

  stg_.Validate();
  stats_.bdd_ops = mgr_.num_ops();
  stats_.bdd_nodes = mgr_.num_nodes();
  stats_.phase.total_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - run_start)
          .count();
  return ScheduleResult{std::move(stg_), stats_};
}

}  // namespace

Status SchedulerOptions::Validate() const {
  if (lookahead < 0) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: lookahead must be >= 0, got ", lookahead));
  }
  if (gc_window < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: gc_window must be >= 1, got ", gc_window));
  }
  if (max_states < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: max_states must be >= 1, got ",
               max_states));
  }
  if (max_ops_per_state < 1) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: max_ops_per_state must be >= 1, got ",
               max_ops_per_state));
  }
  if (!(clock.period_ns > 0.0)) {
    return Status::MakeError(
        StatusCode::kInvalidArgument,
        StrCat("SchedulerOptions: clock period must be > 0, got ",
               clock.period_ns));
  }
  return Status::Ok();
}

Result<ScheduleReport> Schedule(const ScheduleRequest& request) {
  if (request.graph == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: graph is null");
  }
  if (request.library == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: library is null");
  }
  if (request.allocation == nullptr) {
    return Status::MakeError(StatusCode::kInvalidArgument,
                             "ScheduleRequest: allocation is null");
  }
  if (const Status s = request.options.Validate(); !s.ok()) return s;
  try {
    SchedulerImpl impl(*request.graph, *request.library, *request.allocation,
                       request.options);
    return impl.Run();
  } catch (const DeadlineExceededError& e) {
    return Status::MakeError(StatusCode::kDeadlineExceeded, e.what());
  } catch (const CancelledError& e) {
    return Status::MakeError(StatusCode::kCancelled, e.what());
  } catch (const Error& e) {
    return Status::MakeError(e.what());
  }
}

}  // namespace ws
