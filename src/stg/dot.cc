#include "stg/dot.h"

#include <sstream>

#include "base/strings.h"

namespace ws {
namespace {

std::string OpLabel(const Cdfg& g, const ScheduledOp& op) {
  std::string s = InstRefToString(g, op.inst);
  if (op.stage > 0) s += "~" + std::to_string(op.stage);
  if (op.guard != "1" && !op.guard.empty()) s += " / " + op.guard;
  return s;
}

std::string ShiftLabel(const Transition& t) {
  if (t.iter_shift.empty()) return "";
  std::vector<std::string> parts;
  for (const auto& [loop, delta] : t.iter_shift) {
    parts.push_back(StrPrintf("L%u-=%d", loop.value(), delta));
  }
  return " [" + Join(parts, ",") + "]";
}

}  // namespace

std::string StgToDot(const Stg& stg, const Cdfg& g) {
  std::ostringstream os;
  os << "digraph \"" << DotEscape(stg.name()) << "\" {\n";
  os << "  node [shape=box, fontsize=10];\n";
  for (const State& s : stg.states()) {
    os << "  s" << s.id.value() << " [label=\"";
    if (s.is_stop) {
      os << "STOP";
    } else {
      os << "S" << s.id.value();
      for (const ScheduledOp& op : s.ops) {
        os << "\\n" << DotEscape(OpLabel(g, op));
      }
    }
    os << "\"";
    if (s.id == stg.entry()) os << ", penwidth=2";
    os << "];\n";
  }
  for (const State& s : stg.states()) {
    for (const Transition& t : s.out) {
      os << "  s" << t.from.value() << " -> s" << t.to.value()
         << " [label=\"" << DotEscape(TransitionLabel(g, t) + ShiftLabel(t))
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string StgToText(const Stg& stg, const Cdfg& g) {
  std::ostringstream os;
  for (const State& s : stg.states()) {
    if (s.is_stop) {
      os << "S" << s.id.value() << ": STOP\n";
      continue;
    }
    os << "S" << s.id.value() << (s.id == stg.entry() ? " (entry)" : "")
       << ":";
    for (const ScheduledOp& op : s.ops) {
      os << " " << OpLabel(g, op) << ";";
    }
    os << "\n";
    for (const Transition& t : s.out) {
      os << "    --[" << TransitionLabel(g, t) << ShiftLabel(t) << "]--> S"
         << t.to.value() << "\n";
    }
  }
  return os.str();
}

}  // namespace ws
