// Graphviz export of STGs, drawn in the paper's Figure 2 style: states list
// their operation instances with speculation annotations; edges carry
// resolution conditions and (for loop-closing edges) the register relabel
// shift.
#ifndef WS_STG_DOT_H
#define WS_STG_DOT_H

#include <string>

#include "cdfg/cdfg.h"
#include "stg/stg.h"

namespace ws {

std::string StgToDot(const Stg& stg, const Cdfg& g);

// Text rendering, one line per state — convenient for logs and tests.
std::string StgToText(const Stg& stg, const Cdfg& g);

}  // namespace ws

#endif  // WS_STG_DOT_H
