// State transition graph (STG) — the scheduled behavioral description.
//
// Mirrors the paper's Figure 2 drawings: vertices are controller states
// annotated with the operation instances performed in that state (each
// carrying a symbolic loop-iteration index and, for speculative operations,
// the residual speculation condition, e.g. "++1_2 / (c_1 & c_2)"); edges are
// controller transitions labeled with conditions over the results of
// conditional operations resolved in the source state.
//
// Iteration frames: operation instances record the absolute iteration index
// seen on the exploration path that created their state. When the scheduler
// closes the graph by linking back to an equivalent earlier state, the edge
// carries a per-loop iteration shift (the paper's register-relabeling map M:
// "variable v_i is relabelled as v_(i-1)"). A simulator traversing such an
// edge adds the shift to its running per-loop offset; `recorded iteration +
// offset` is the actual iteration.
#ifndef WS_STG_STG_H
#define WS_STG_STG_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/ids.h"
#include "base/status.h"
#include "cdfg/cdfg.h"

namespace ws {

struct StgStateTag;
using StateId = Id<StgStateTag>;

// Identifies one executed operation instance: CDFG node, absolute iteration
// (in the recording frame), and a version index distinguishing re-executions
// of the same (node, iteration) with different operand bindings (the paper's
// op7' / op7'' in Example 6).
struct InstRef {
  NodeId node;
  int iter = 0;
  int version = 0;

  friend bool operator==(const InstRef&, const InstRef&) = default;
};

// An operation instance bound into a state.
struct ScheduledOp {
  InstRef inst;
  std::vector<InstRef> operands;  // producing instances, in CDFG input order
                                  // (memory ops carry an extra trailing token
                                  // operand referencing the previous access)
  std::string guard;              // residual speculation condition at the time
                                  // of scheduling; "1" when non-speculative
  int fu_type = -1;               // functional-unit type index (FuLibrary)
  int stage = 0;                  // 0 = initiated in this state; k>0 = k-th
                                  // continuation cycle of a multi-cycle op
  double start_offset_ns = 0.0;   // within-cycle start time (chaining)

  friend bool operator==(const ScheduledOp&, const ScheduledOp&) = default;
};

// One literal of a transition condition: the resolved value of a conditional
// operation instance.
struct CondLiteral {
  InstRef cond;
  bool value = true;

  friend bool operator==(const CondLiteral&, const CondLiteral&) = default;
};

// Binding of a CDFG output to the instance that holds its final value.
struct OutputBinding {
  NodeId output;    // kOutput node
  InstRef value;    // instance producing the value (source nodes allowed)

  friend bool operator==(const OutputBinding&, const OutputBinding&) = default;
};

struct Transition {
  StateId from;
  StateId to;
  // Disjunction of conjunctions over the condition instances resolved in
  // `from`. An unconditional transition has a single empty cube.
  std::vector<std::vector<CondLiteral>> cubes;
  // Per-loop iteration shift applied when traversing this edge (loop id,
  // delta >= 0). Empty for forward edges.
  std::vector<std::pair<LoopId, int>> iter_shift;
  // Set when `to` is the STOP state: where each CDFG output's value lives.
  std::vector<OutputBinding> outputs;

  friend bool operator==(const Transition&, const Transition&) = default;
};

struct State {
  StateId id;
  std::vector<ScheduledOp> ops;
  std::vector<Transition> out;
  bool is_stop = false;

  friend bool operator==(const State&, const State&) = default;
};

// The scheduled design.
class Stg {
 public:
  explicit Stg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  StateId AddState();
  StateId AddStopState();

  State& state(StateId id) {
    WS_CHECK(id.valid() && id.value() < states_.size());
    return states_[id.value()];
  }
  const State& state(StateId id) const {
    WS_CHECK(id.valid() && id.value() < states_.size());
    return states_[id.value()];
  }
  std::size_t num_states() const { return states_.size(); }
  const std::vector<State>& states() const { return states_; }

  StateId entry() const { return entry_; }
  void set_entry(StateId id) { entry_ = id; }
  StateId stop() const { return stop_; }

  // Number of states excluding the STOP pseudo-state (the paper's "#states"
  // column counts controller states that perform work).
  std::size_t num_work_states() const;

  // Total operation initiations (stage-0 ScheduledOps) across all states.
  std::size_t num_op_initiations() const;

  // Structural checks: transitions reference valid states, stop edges carry
  // output bindings, non-stop states have at least one outgoing edge.
  void Validate() const;

  // Structural equality: same name, states (ops, transitions, stop flags),
  // entry and stop ids. The io codecs' round-trip tests rest on this.
  friend bool operator==(const Stg& a, const Stg& b) {
    return a.name_ == b.name_ && a.states_ == b.states_ &&
           a.entry_ == b.entry_ && a.stop_ == b.stop_;
  }

 private:
  std::string name_;
  std::vector<State> states_;
  StateId entry_;
  StateId stop_;
};

// Renders an instance as the paper does: "name_iter" (version suffixed as
// ".v" when nonzero), e.g. "++1_2" or "*1_0.1".
std::string InstRefToString(const Cdfg& g, const InstRef& ref);

// Renders a transition label, e.g. "c_1 & !c_2 | !c_1".
std::string TransitionLabel(const Cdfg& g, const Transition& t);

}  // namespace ws

#endif  // WS_STG_STG_H
