#include "stg/stg.h"

#include <unordered_set>

#include "base/strings.h"

namespace ws {

StateId Stg::AddState() {
  State s;
  s.id = StateId(static_cast<StateId::value_type>(states_.size()));
  states_.push_back(std::move(s));
  if (!entry_.valid()) entry_ = states_.back().id;
  return states_.back().id;
}

StateId Stg::AddStopState() {
  if (stop_.valid()) return stop_;
  stop_ = AddState();
  states_[stop_.value()].is_stop = true;
  return stop_;
}

std::size_t Stg::num_work_states() const {
  std::size_t n = 0;
  for (const State& s : states_) {
    if (!s.is_stop) ++n;
  }
  return n;
}

std::size_t Stg::num_op_initiations() const {
  std::size_t n = 0;
  for (const State& s : states_) {
    for (const ScheduledOp& op : s.ops) {
      if (op.stage == 0) ++n;
    }
  }
  return n;
}

void Stg::Validate() const {
  WS_CHECK_MSG(entry_.valid(), "STG has no entry state");
  for (const State& s : states_) {
    for (const Transition& t : s.out) {
      WS_CHECK(t.from == s.id);
      WS_CHECK(t.to.valid() && t.to.value() < states_.size());
      WS_CHECK_MSG(!t.cubes.empty(), "transition with no condition cubes");
    }
    if (!s.is_stop) {
      WS_CHECK_MSG(!s.out.empty(),
                   "non-stop state " << s.id.value() << " has no successor");
    } else {
      WS_CHECK_MSG(s.out.empty(), "stop state has successors");
      WS_CHECK_MSG(s.ops.empty(), "stop state performs operations");
    }
  }
}

std::string InstRefToString(const Cdfg& g, const InstRef& ref) {
  std::string s = g.node(ref.node).name + "_" + std::to_string(ref.iter);
  if (ref.version != 0) s += "." + std::to_string(ref.version);
  return s;
}

std::string TransitionLabel(const Cdfg& g, const Transition& t) {
  if (t.cubes.size() == 1 && t.cubes[0].empty()) return "1";
  std::vector<std::string> terms;
  terms.reserve(t.cubes.size());
  for (const auto& cube : t.cubes) {
    if (cube.empty()) return "1";
    std::vector<std::string> lits;
    lits.reserve(cube.size());
    for (const CondLiteral& lit : cube) {
      lits.push_back((lit.value ? "" : "!") + InstRefToString(g, lit.cond));
    }
    const std::string body = Join(lits, " & ");
    terms.push_back(t.cubes.size() > 1 && lits.size() > 1 ? "(" + body + ")"
                                                          : body);
  }
  return Join(terms, " | ");
}

}  // namespace ws
