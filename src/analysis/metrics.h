// Analytic schedule metrics — the four columns of the paper's Table 1.
//
//  * Expected number of cycles (E.N.C.): the STG is an absorbing Markov
//    chain. Each transition cube's probability is the product of the
//    annotated branch probabilities of its literals (conditional-operation
//    outcomes are treated as independent across instances — the same
//    assumption behind the paper's Equations 1-4); the expected
//    steps-to-absorption are obtained by solving the linear system
//    E[s] = 1 + sum_t P(s->t) E[t] with Gaussian elimination. This is the
//    noise-free counterpart of the paper's trace-driven VHDL measurement
//    (and is cross-checked against trace simulation in the tests).
//  * Best case: fewest cycles on any entry->STOP path (BFS).
//  * Worst case: most cycles over executions in which loops iterate at most
//    `iteration_budget` times in total, computed by dynamic programming over
//    (state, remaining budget); loop-closing edges (those carrying an
//    iteration shift) consume budget. A cycle of shift-free edges would make
//    the worst case unbounded and raises ws::Error.
#ifndef WS_ANALYSIS_METRICS_H
#define WS_ANALYSIS_METRICS_H

#include <cstdint>

#include "cdfg/cdfg.h"
#include "stg/stg.h"

namespace ws {

// Probability that a single transition is taken, from the CDFG branch
// annotations.
double TransitionProbability(const Cdfg& g, const Transition& t);

// Expected cycles from entry to STOP. Throws if the chain does not absorb
// (e.g. a probability-1 cycle).
double ExpectedCycles(const Stg& stg, const Cdfg& g);

// Minimum cycles over all entry->STOP paths.
std::int64_t BestCaseCycles(const Stg& stg);

// Maximum cycles when at most `iteration_budget` loop-back traversals occur.
std::int64_t WorstCaseCycles(const Stg& stg, int iteration_budget);

}  // namespace ws

#endif  // WS_ANALYSIS_METRICS_H
