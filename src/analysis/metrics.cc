#include "analysis/metrics.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "base/status.h"

namespace ws {

double TransitionProbability(const Cdfg& g, const Transition& t) {
  double p = 0.0;
  for (const auto& cube : t.cubes) {
    double cube_p = 1.0;
    for (const CondLiteral& lit : cube) {
      const double pt = g.cond_probability(lit.cond.node);
      cube_p *= lit.value ? pt : 1.0 - pt;
    }
    p += cube_p;  // cubes of one transition are disjoint by construction
  }
  return p;
}

double ExpectedCycles(const Stg& stg, const Cdfg& g) {
  const std::size_t n = stg.num_states();
  // Linear system A * E = b over non-stop states:
  //   E[s] - sum_t P(s->t) E[t] = 1.
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (const State& s : stg.states()) {
    const std::size_t i = s.id.value();
    if (s.is_stop) {
      a[i][i] = 1.0;
      a[i][n] = 0.0;
      continue;
    }
    a[i][i] += 1.0;
    a[i][n] = 1.0;
    double total = 0.0;
    for (const Transition& t : s.out) {
      const double p = TransitionProbability(g, t);
      total += p;
      a[i][t.to.value()] -= p;
    }
    WS_CHECK_MSG(std::abs(total - 1.0) < 1e-6,
                 "state " << i << " transition probabilities sum to "
                          << total);
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    WS_CHECK_MSG(std::abs(a[pivot][col]) > 1e-12,
                 "singular Markov system: chain does not absorb");
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
    }
  }
  return a[stg.entry().value()][n] / a[stg.entry().value()][stg.entry().value()];
}

std::int64_t BestCaseCycles(const Stg& stg) {
  const std::size_t n = stg.num_states();
  std::vector<std::int64_t> dist(n, -1);
  std::deque<StateId> queue;
  dist[stg.entry().value()] = 0;
  queue.push_back(stg.entry());
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    const State& state = stg.state(s);
    if (state.is_stop) return dist[s.value()];
    for (const Transition& t : state.out) {
      if (dist[t.to.value()] < 0) {
        dist[t.to.value()] = dist[s.value()] + 1;
        queue.push_back(t.to);
      }
    }
  }
  WS_THROW("STOP unreachable from entry");
}

namespace {

int ShiftWeight(const Transition& t) {
  int w = 0;
  for (const auto& [loop, delta] : t.iter_shift) w += std::max(0, delta);
  return w;
}

}  // namespace

std::int64_t WorstCaseCycles(const Stg& stg, int iteration_budget) {
  WS_CHECK(iteration_budget >= 0);
  const std::size_t n = stg.num_states();
  const std::size_t budgets = static_cast<std::size_t>(iteration_budget) + 1;
  // memo[s][b]: longest cycles from s with b budget; -2 unvisited, -3 on
  // stack (cycle detection), -1 means "STOP unreachable within budget".
  std::vector<std::vector<std::int64_t>> memo(
      n, std::vector<std::int64_t>(budgets, -2));

  auto rec = [&](auto&& self, std::uint32_t s, int b) -> std::int64_t {
    const State& state = stg.state(StateId(s));
    if (state.is_stop) return 0;
    auto& slot = memo[s][static_cast<std::size_t>(b)];
    if (slot == -3) {
      WS_THROW("worst case unbounded: cycle without loop-back shift");
    }
    if (slot != -2) return slot;
    slot = -3;
    std::int64_t best = -1;
    for (const Transition& t : state.out) {
      const int w = ShiftWeight(t);
      if (w > b) continue;
      const std::int64_t sub = self(self, t.to.value(), b - w);
      if (sub >= 0) best = std::max(best, 1 + sub);
    }
    slot = best;
    return best;
  };
  const std::int64_t result =
      rec(rec, stg.entry().value(), iteration_budget);
  WS_CHECK_MSG(result >= 0, "STOP unreachable within iteration budget");
  return result;
}

}  // namespace ws
