#include "mem/disambig.h"

#include <map>
#include <unordered_map>
#include <utility>

#include "base/strings.h"
#include "cdfg/eval.h"

namespace ws {
namespace {

// An array is analyzable when every access shares one scope (all in the same
// loop, or all top-level) and none is under an if-nest guard: the dependence
// deltas are then plain iteration distances. Anything else keeps the
// conservative token chain.
bool ModeledArray(const Cdfg& g, const MemArray& arr) {
  const std::vector<NodeId>& accesses = g.array_accesses(arr.id);
  if (accesses.empty()) return false;
  const LoopId scope = g.node(accesses.front()).loop;
  for (NodeId a : accesses) {
    const Node& n = g.node(a);
    if (n.loop != scope || !n.ctrl.empty()) return false;
  }
  return true;
}

}  // namespace

// Friend of Cdfg: appends disambiguation comparators and address-history
// phis to a copy of the graph. Appended ids never disturb existing ones, so
// the original graph's stimuli/outputs/profiles stay valid.
struct MemSpecRewriter {
  Cdfg g;
  LsqModel lsq;

  explicit MemSpecRewriter(const Cdfg& in) : g(in) {}

  NodeId Append(Node n) {
    const NodeId id = NodeId(static_cast<std::uint32_t>(g.nodes_.size()));
    n.id = id;
    const LoopId loop = n.loop;
    const bool is_phi = n.kind == OpKind::kLoopPhi;
    g.nodes_.push_back(std::move(n));
    if (loop.valid()) {
      g.loops_[loop.value()].body.push_back(id);
      if (is_phi) g.loops_[loop.value()].phis.push_back(id);
    }
    return id;
  }

  void Run() {
    lsq.modeled_.assign(g.arrays().size(), false);
    lsq.cmps_.assign(g.arrays().size(), {});
    for (const MemArray& arr : g.arrays()) {
      if (!ModeledArray(g, arr)) continue;
      lsq.modeled_[arr.id.value()] = true;
      lsq.active_ = true;
      RelaxArray(arr.id, arr.size, g.array_accesses(arr.id));
    }
    if (lsq.active_) {
      g.RebuildDerived();
      g.Validate();
    }
  }

  void RelaxArray(ArrayId arr, int size,
                  const std::vector<NodeId>& accesses) {
    const bool in_loop = g.node(accesses.front()).loop.valid();
    std::vector<NodeId> stores;
    for (NodeId a : accesses) {
      if (g.node(a).kind == OpKind::kMemWrite) stores.push_back(a);
    }

    for (std::size_t p = 0; p < accesses.size(); ++p) {
      const NodeId a = accesses[p];
      if (g.node(a).kind == OpKind::kMemWrite) {
        // Stores never bypass: hard edges to every earlier access of this
        // iteration and every access of the previous one. Older iterations
        // are ordered transitively through the store chain.
        auto& d = lsq.deps_[a];
        for (std::size_t q = 0; q < p; ++q) {
          d.push_back({accesses[q], 0, NodeId()});
        }
        if (in_loop) {
          for (NodeId b : accesses) d.push_back({b, 1, NodeId()});
        }
      } else {
        // Loads order only against stores; the edges are speculative where
        // the addresses cannot be compared statically.
        for (std::size_t q = 0; q < p; ++q) {
          if (g.node(accesses[q]).kind == OpKind::kMemWrite) {
            AddLoadDep(arr, size, a, accesses[q], 0);
          }
        }
        if (in_loop && !stores.empty()) {
          for (NodeId s : stores) AddLoadDep(arr, size, a, s, 1);
          // RAW horizon: the last store two iterations back is awaited
          // unconditionally. It is itself ordered behind everything older,
          // so this bounds the bypass distance without more comparators.
          lsq.deps_[a].push_back({stores.back(), 2, NodeId()});
        }
      }
    }
  }

  void AddLoadDep(ArrayId arr, int size, NodeId load, NodeId store,
                  int delta) {
    const NodeId la = g.node(load).inputs[0];
    const NodeId sa = g.node(store).inputs[0];
    const OpKind la_kind = g.node(la).kind;
    const OpKind sa_kind = g.node(sa).kind;
    if (la_kind == OpKind::kConst && sa_kind == OpKind::kConst) {
      const bool alias = WrapAddress(g.node(la).const_value, size) ==
                         WrapAddress(g.node(sa).const_value, size);
      if (alias) lsq.deps_[load].push_back({store, delta, NodeId()});
      return;  // trivially disjoint: no edge, no comparator, no fork
    }
    const bool sa_invariant = !g.node(sa).loop.valid();
    if (la == sa && (delta == 0 || sa_invariant)) {
      // The same address expression: a certain alias. (Across iterations
      // this only holds when the address is loop-invariant.)
      lsq.deps_[load].push_back({store, delta, NodeId()});
      return;
    }
    NodeId rhs = sa;
    if (delta == 1 && !sa_invariant) rhs = AddressHistoryPhi(store);
    const NodeId cmp = Comparator(arr, load, store, la, rhs, delta);
    lsq.deps_[load].push_back({store, delta, cmp});
  }

  NodeId Comparator(ArrayId arr, NodeId load, NodeId store, NodeId la,
                    NodeId rhs, int delta) {
    // One comparator per distinct (address, address) pair: a loop-invariant
    // store address yields the same comparison at every delta.
    const auto key = std::make_pair(la.value(), rhs.value());
    auto it = cmp_memo_.find(key);
    if (it != cmp_memo_.end()) return it->second;
    Node cmp;
    cmp.kind = OpKind::kDisambig;
    cmp.name = StrCat("lsq!=", g.node(load).name, ",", g.node(store).name,
                      delta == 1 ? "'" : "");
    cmp.inputs = {la, rhs};
    cmp.loop = g.node(load).loop;
    cmp.array = arr;
    const NodeId id = Append(std::move(cmp));
    // Bypasses usually survive: addresses of distinct accesses rarely
    // collide. Drives Eq. 5 criticality and the single-path likely profile.
    g.set_cond_probability(id, 0.9);
    lsq.cmps_[arr.value()].push_back(id);
    cmp_memo_.emplace(key, id);
    return id;
  }

  NodeId AddressHistoryPhi(NodeId store) {
    auto it = addr_phi_.find(store);
    if (it != addr_phi_.end()) return it->second;
    if (!init_const_.valid()) {
      Node k;
      k.kind = OpKind::kConst;
      k.name = "lsq$init";
      k.const_value = -1;
      init_const_ = Append(std::move(k));
    }
    Node phi;
    phi.kind = OpKind::kLoopPhi;
    phi.name = StrCat("lsq$addr,", g.node(store).name);
    phi.inputs = {init_const_, g.node(store).inputs[0]};
    phi.loop = g.node(store).loop;
    const NodeId id = Append(std::move(phi));
    // The init value is arbitrary (-1 wraps to a real address): the phi is
    // only consulted through delta-1 edges, which are vacuous at iteration 0.
    addr_phi_.emplace(store, id);
    return id;
  }

  std::unordered_map<NodeId, NodeId> addr_phi_;  // store -> history phi
  std::map<std::pair<std::uint32_t, std::uint32_t>, NodeId> cmp_memo_;
  NodeId init_const_;
};

bool MemSpecApplicable(const Cdfg& g) {
  for (const MemArray& arr : g.arrays()) {
    if (ModeledArray(g, arr)) return true;
  }
  return false;
}

MemSpecResult ApplyMemSpec(const Cdfg& g) {
  MemSpecRewriter rw(g);
  rw.Run();
  return MemSpecResult{std::move(rw.g), std::move(rw.lsq)};
}

}  // namespace ws
