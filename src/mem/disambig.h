// The dependence-relaxation pass behind SchedulerOptions::mem_spec.
//
// ApplyMemSpec copies the graph and, for every array whose accesses all live
// in one scope, replaces the conservative program-order memory chain with
// the LSQ dependence model (mem/lsq.h). For each load/store pair whose
// ordering can be speculated away it appends an OpKind::kDisambig comparator
// `addr_load != addr_store`; cross-iteration pairs compare against an
// address-history loop-phi carrying the store's address from the previous
// iteration. Comparators are control conditions: the existing fork /
// validate / invalidate machinery resolves them at state boundaries exactly
// like branch conditions, squashing mis-speculated bypassing loads.
//
// Trivially-disjoint pairs (two distinct constant addresses) fold statically:
// the edge is simply dropped and no comparator — hence no controller fork —
// is ever paid. Provably-aliasing pairs (same address node, or equal
// constants) fold to hard edges the same way.
//
// The appended nodes never disturb existing ids, so stimuli, outputs and
// profile annotations made against the original graph stay valid; the
// relaxed graph computes the same outputs (comparators feed only the
// controller). Any STG scheduled from the relaxed graph must also be
// *simulated* against it — its scheduled ops reference comparator ids the
// original graph does not have.
#ifndef WS_MEM_DISAMBIG_H
#define WS_MEM_DISAMBIG_H

#include "cdfg/cdfg.h"
#include "mem/lsq.h"

namespace ws {

struct MemSpecResult {
  Cdfg graph;    // the relaxed copy (== input when !lsq.active())
  LsqModel lsq;  // dependence model over the relaxed graph's ids
};

// True when ApplyMemSpec would model at least one array of `g` — i.e. when
// enabling mem_spec changes this design at all. Cheap (no graph copy);
// callers that need the graph an STG was scheduled against use this to
// decide between the original and ApplyMemSpec(g).graph.
bool MemSpecApplicable(const Cdfg& g);

// Builds the relaxed graph and its LSQ model. Deterministic: comparators and
// address phis are appended in array/program order, so two calls yield
// structurally identical graphs.
MemSpecResult ApplyMemSpec(const Cdfg& g);

}  // namespace ws

#endif  // WS_MEM_DISAMBIG_H
