// Load-store queue (LSQ) dependence model: the relaxed per-array memory
// ordering that replaces the conservative program-order token chain when
// speculative memory disambiguation is enabled (SchedulerOptions::mem_spec).
//
// The conservative scheduler orders every pair of same-array accesses by a
// token chain, which serializes loads behind stores whose addresses they can
// never conflict with. The LSQ model keeps only the edges the memory
// semantics actually require:
//
//   * a load depends on an earlier store — but the edge may be *conditional*:
//     when the addresses are not yet comparable at schedule time, the load
//     may issue past the store carrying the disambiguation literal
//     `addr_load != addr_store` (an OpKind::kDisambig comparator minted by
//     mem/disambig.cc) in its path guard. An alias resolution squashes the
//     bypassing load and it re-executes behind the store.
//   * a store depends unconditionally (a hard edge) on every earlier access
//     it could conflict with: stores are irreversible, so they never issue
//     speculatively and never bypass.
//   * loads no longer order against other loads at all.
//
// The model is built once per scheduling run by ApplyMemSpec (disambig.h)
// and consumed by the candidate generator (dependence tests + the
// lsq_depth window) and by the scheduler's GC hard-use computation.
#ifndef WS_MEM_LSQ_H
#define WS_MEM_LSQ_H

#include <unordered_map>
#include <vector>

#include "cdfg/cdfg.h"

namespace ws {

// One ordering edge of the relaxed memory dependence graph: the access owning
// this edge must observe the completion token of `pred` executed `delta`
// iterations earlier — unless `cmp` is valid and resolves true (the two
// addresses are provably different elements), in which case the edge
// dissolves. An invalid `cmp` marks a hard (unconditional) edge.
struct MemDep {
  NodeId pred;
  int delta = 0;
  NodeId cmp;
};

// The per-run dependence model. An array is "modeled" when the relaxation
// pass could analyze it (all accesses in one scope); accesses of unmodeled
// arrays keep the conservative token chain.
class LsqModel {
 public:
  bool Models(ArrayId arr) const {
    return arr.valid() && arr.value() < modeled_.size() &&
           modeled_[arr.value()];
  }

  // The relaxed dependence edges of `access` (empty for non-access nodes and
  // for accesses of unmodeled arrays).
  const std::vector<MemDep>& DepsFor(NodeId access) const;

  // Every disambiguation comparator minted for `arr`, in creation order.
  // The candidate generator counts their unresolved instances against the
  // lsq_depth window.
  const std::vector<NodeId>& Comparators(ArrayId arr) const;

  // True when at least one array is modeled — i.e. the relaxation changes
  // anything at all for this graph.
  bool active() const { return active_; }

 private:
  friend struct MemSpecRewriter;  // mem/disambig.cc builds the model

  std::vector<bool> modeled_;                            // by array
  std::vector<std::vector<NodeId>> cmps_;                // by array
  std::unordered_map<NodeId, std::vector<MemDep>> deps_;  // by access node
  bool active_ = false;
};

}  // namespace ws

#endif  // WS_MEM_LSQ_H
