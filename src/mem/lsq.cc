#include "mem/lsq.h"

namespace ws {
namespace {
const std::vector<MemDep> kNoDeps;
const std::vector<NodeId> kNoCmps;
}  // namespace

const std::vector<MemDep>& LsqModel::DepsFor(NodeId access) const {
  auto it = deps_.find(access);
  return it == deps_.end() ? kNoDeps : it->second;
}

const std::vector<NodeId>& LsqModel::Comparators(ArrayId arr) const {
  if (!arr.valid() || arr.value() >= cmps_.size()) return kNoCmps;
  return cmps_[arr.value()];
}

}  // namespace ws
