// Loop pipelining via speculation: how deep does the scheduler have to
// speculate to saturate a data-dependent loop?
//
// Uses the paper's Figure 1 loop (Test1, a memory read feeding two chained
// multiplications): the only way to reach one-iteration-per-cycle
// throughput is to speculatively start ~8 iterations before their loop
// conditions resolve. This example sweeps the speculation window
// (lookahead) and the multiplier allocation, reporting the achieved
// cycles-per-iteration — an ablation of the paper's Example 1.
#include <cstdio>

#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

int main() {
  using namespace ws;
  Benchmark b = MakeTest1(1, 4242);
  // A long-running trace so the steady state dominates.
  Stimulus st = b.stimuli[0];
  st.inputs[b.graph.inputs()[0]] = 190;
  const InterpResult golden = Interpret(b.graph, st);
  const int iters = golden.loop_iterations.begin()->second;
  std::printf("trace executes %d loop iterations\n\n", iters);

  std::printf("%-10s %-6s %9s %10s %10s\n", "mode", "mults", "lookahead",
              "cycles", "cyc/iter");
  for (int lookahead : {0, 2, 4, 6, 8, 10}) {
    for (int mults : {2, 4}) {
      Allocation alloc = Allocation::None(b.library);
      alloc.Set(b.library, "add1", 1);
      alloc.Set(b.library, "mult1", mults);
      alloc.Set(b.library, "comp1", 1);
      alloc.Set(b.library, "inc1", 1);
      SchedulerOptions opts;
      opts.mode = SpeculationMode::kWaveschedSpec;
      opts.lookahead = lookahead;
      try {
        const ScheduleResult r = Schedule({&b.graph, &b.library, &alloc, opts}).value();
        const StgSimResult sim = SimulateStg(r.stg, b.graph, st);
        std::printf("%-10s %-6d %9d %10lld %10.2f\n", "spec", mults,
                    lookahead, static_cast<long long>(sim.cycles),
                    static_cast<double>(sim.cycles) / iters);
      } catch (const Error& e) {
        std::printf("%-10s %-6d %9d failed: %s\n", "spec", mults, lookahead,
                    e.what());
      }
    }
  }

  // The non-speculative baseline for contrast.
  {
    SchedulerOptions opts;
    opts.mode = SpeculationMode::kWavesched;
    opts.lookahead = 8;
    const ScheduleResult r =
        Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
    const StgSimResult sim = SimulateStg(r.stg, b.graph, st);
    std::printf("%-10s %-6s %9s %10lld %10.2f  (the serial bound the paper "
                "breaks)\n",
                "wavesched", "-", "-", static_cast<long long>(sim.cycles),
                static_cast<double>(sim.cycles) / iters);
  }
  return 0;
}
