// Quickstart: build a small control-flow intensive design with the CDFG
// builder API, schedule it with and without speculative execution, simulate
// both schedules, and print the state transition graphs.
//
//   $ ./quickstart
//
// The design: clamp-accumulate — walk an array until the running sum
// exceeds a threshold, doubling negative entries on the way:
//
//   input  threshold;
//   array  A[64];
//   sum = 0; i = 0;
//   while (sum < threshold) {
//     v = A[i];
//     if (v < 0) { v2 = v * 2; } else { v2 = v; }
//     sum = sum + v2;
//     i = i + 1;
//   }
//   output steps = i;
#include <cstdio>

#include "analysis/metrics.h"
#include "base/rng.h"
#include "cdfg/builder.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "stg/dot.h"

int main() {
  using namespace ws;

  // --- 1. Describe the behavior as a CDFG -----------------------------------
  CdfgBuilder b("quickstart");
  const NodeId threshold = b.Input("threshold");
  const ArrayId arr = b.Array("A", 64);
  const NodeId zero = b.Konst(0);
  const NodeId two = b.Konst(2);

  b.BeginLoop("accumulate");
  const NodeId sum = b.LoopPhi("sum", zero);
  const NodeId i = b.LoopPhi("i", zero);
  const NodeId cond = b.Op(OpKind::kLt, "<1", {sum, threshold});
  b.SetLoopCondition(cond);
  const NodeId v = b.MemRead("A", arr, i);
  const NodeId neg = b.Op(OpKind::kLt, "<2", {v, zero});
  b.BeginIf(neg);
  const NodeId doubled = b.Op(OpKind::kMul, "*1", {v, two});
  b.EndIf();
  const NodeId v2 = b.Select("selv", neg, doubled, v);
  const NodeId sum1 = b.Op(OpKind::kAdd, "+1", {sum, v2});
  const NodeId i1 = b.Op(OpKind::kInc, "++1", {i});
  b.SetLoopBack(sum, sum1);
  b.SetLoopBack(i, i1);
  b.EndLoop();
  b.Output("steps", i);
  b.Output("sum", sum);
  Cdfg g = b.Finish();

  // --- 2. Pick resources and schedule both ways ------------------------------
  const FuLibrary lib = FuLibrary::PaperLibrary();
  Allocation alloc = Allocation::None(lib);
  alloc.Set(lib, "add1", 1);
  alloc.Set(lib, "mult1", 1);
  alloc.Set(lib, "comp1", 2);
  alloc.Set(lib, "inc1", 1);

  SchedulerOptions opts;
  opts.lookahead = 6;
  opts.mode = SpeculationMode::kWavesched;
  const ScheduleResult ws = Schedule({&g, &lib, &alloc, opts}).value();
  opts.mode = SpeculationMode::kWaveschedSpec;
  const ScheduleResult spec = Schedule({&g, &lib, &alloc, opts}).value();

  std::printf("=== non-speculative schedule (Wavesched) ===\n%s\n",
              StgToText(ws.stg, g).c_str());
  std::printf("=== speculative schedule (Wavesched-spec) ===\n%s\n",
              StgToText(spec.stg, g).c_str());

  // --- 3. Simulate on random traces and compare ------------------------------
  Rng rng(7);
  double total_ws = 0, total_spec = 0;
  const int kRuns = 20;
  for (int run = 0; run < kRuns; ++run) {
    Stimulus st;
    st.inputs[threshold] = 40 + static_cast<std::int64_t>(rng.NextBelow(80));
    std::vector<std::int64_t> contents(64);
    for (auto& x : contents) x = rng.NextGaussianInt(4.0) + 2;
    st.arrays[arr] = std::move(contents);
    total_ws += static_cast<double>(SimulateStg(ws.stg, g, st).cycles);
    total_spec += static_cast<double>(SimulateStg(spec.stg, g, st).cycles);
  }
  std::printf("average cycles over %d traces: WS %.1f, WS-spec %.1f "
              "(%.2fx faster)\n",
              kRuns, total_ws / kRuns, total_spec / kRuns,
              total_ws / total_spec);
  return 0;
}
