// wavesched_cli — a file-driven driver for the whole flow.
//
// Usage:
//   wavesched_cli <design.beh> [--mode ws|single|spec] [--lookahead N]
//                 [--alloc unit=count,...] [--dot cdfg|stg] [--enc]
//
// Reads a behavioral description, compiles it to a CDFG, schedules it, and
// prints the STG (text by default, graphviz with --dot). With --enc it also
// generates random stimuli, profiles branch probabilities, re-schedules,
// and reports expected/best/worst cycles.
//
// Example:
//   wavesched_cli gcd.beh --mode spec --alloc sub1=2,comp1=1,eqc1=2 --enc
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/metrics.h"
#include "base/rng.h"
#include "cdfg/dot.h"
#include "lang/lower.h"
#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "stg/dot.h"

namespace {

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: wavesched_cli <design.beh> [--mode ws|single|spec]\n"
      "                     [--lookahead N] [--alloc unit=count,...]\n"
      "                     [--dot cdfg|stg] [--enc]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ws;
  if (argc < 2) Usage();

  std::string path = argv[1];
  SpeculationMode mode = SpeculationMode::kWaveschedSpec;
  int lookahead = 6;
  std::string alloc_spec;
  std::string dot;
  bool want_enc = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string m = next();
      if (m == "ws") mode = SpeculationMode::kWavesched;
      else if (m == "single") mode = SpeculationMode::kSinglePath;
      else if (m == "spec") mode = SpeculationMode::kWaveschedSpec;
      else Usage();
    } else if (arg == "--lookahead") {
      lookahead = std::atoi(next().c_str());
    } else if (arg == "--alloc") {
      alloc_spec = next();
    } else if (arg == "--dot") {
      dot = next();
    } else if (arg == "--enc") {
      want_enc = true;
    } else {
      Usage();
    }
  }

  try {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string stem = [&] {
      const std::size_t slash = path.find_last_of('/');
      const std::size_t dotpos = path.find_last_of('.');
      const std::size_t from = slash == std::string::npos ? 0 : slash + 1;
      return path.substr(from, dotpos == std::string::npos
                                   ? std::string::npos
                                   : dotpos - from);
    }();
    Cdfg g = CompileBehavioral(stem, ss.str());

    const FuLibrary lib = FuLibrary::PaperLibrary();
    Allocation alloc = Allocation::Unlimited(lib);
    if (!alloc_spec.empty()) {
      alloc = Allocation::None(lib);
      std::istringstream as(alloc_spec);
      std::string item;
      while (std::getline(as, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) Usage();
        alloc.Set(lib, item.substr(0, eq),
                  std::atoi(item.substr(eq + 1).c_str()));
      }
    }

    // Optional profiling pass for the criticality heuristic.
    std::vector<Stimulus> stimuli;
    if (want_enc) {
      StimulusSpec spec;
      spec.default_spec.kind = StimulusSpec::Kind::kGaussian;
      spec.default_spec.sigma = 32.0;
      spec.default_spec.non_negative = true;
      Rng rng(1);
      stimuli = GenerateStimuli(g, spec, 25, rng);
      ProfileBranchProbabilities(g, stimuli);
    }

    SchedulerOptions opts;
    opts.mode = mode;
    opts.lookahead = lookahead;
    const ScheduleResult r = Schedule({&g, &lib, &alloc, opts}).value();

    if (dot == "cdfg") {
      std::printf("%s", CdfgToDot(g).c_str());
    } else if (dot == "stg") {
      std::printf("%s", StgToDot(r.stg, g).c_str());
    } else {
      std::printf("%s", StgToText(r.stg, g).c_str());
    }
    std::fprintf(stderr, "mode=%s states=%zu ops=%zu speculative=%d\n",
                 SpeculationModeName(mode), r.stg.num_work_states(),
                 r.stg.num_op_initiations(), r.stats.speculative_ops);

    if (want_enc) {
      const double enc = MeasureExpectedCycles(r.stg, g, stimuli);
      std::fprintf(stderr, "E.N.C.=%.2f best=%lld worst(budget 512)=%lld\n",
                   enc, static_cast<long long>(BestCaseCycles(r.stg)),
                   static_cast<long long>(WorstCaseCycles(r.stg, 512)));
    }
  } catch (const ws::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
