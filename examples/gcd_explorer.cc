// GCD design-space explorer: the full flow on the paper's GCD example,
// starting from behavioral source text.
//
//   behavioral source --parse/lower--> CDFG --profile--> branch probabilities
//     --schedule (3 modes x allocations)--> STG --simulate/analyze--> report
//     --RTL synthesis--> area
//
// Shows how the pieces of the library compose, and how resource allocation
// and speculation mode trade cycles against area.
#include <cstdio>

#include "analysis/metrics.h"
#include "base/rng.h"
#include "lang/lower.h"
#include "rtl/rtl.h"
#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"

int main() {
  using namespace ws;

  // --- Frontend ---------------------------------------------------------------
  Cdfg g = CompileBehavioral("gcd", R"(
    input x;
    input y;
    a = x;
    b = y;
    while (a != b) {
      if (a > b) { a = a - b; } else { b = b - a; }
    }
    output gcd = a;
  )");
  std::printf("compiled gcd.beh: %zu CDFG nodes, %zu loop(s)\n",
              g.num_nodes(), g.num_loops());

  // --- Stimuli + profiling ------------------------------------------------------
  Rng rng(2026);
  std::vector<Stimulus> stimuli;
  for (int i = 0; i < 40; ++i) {
    Stimulus st;
    st.inputs[g.inputs()[0]] = 1 + (rng.NextGaussianInt(90.0) & 0xff);
    st.inputs[g.inputs()[1]] = 1 + (rng.NextGaussianInt(90.0) & 0xff);
    stimuli.push_back(std::move(st));
  }
  const auto probs = ProfileBranchProbabilities(g, stimuli);
  std::printf("profiled branch probabilities:\n");
  for (const auto& [cond, p] : probs) {
    std::printf("  %-6s P(true) = %.3f\n", g.node(cond).name.c_str(), p);
  }

  // --- Design space -------------------------------------------------------------
  const FuLibrary lib = FuLibrary::PaperLibrary();
  struct Point {
    const char* label;
    SpeculationMode mode;
    int subs;
  };
  const Point points[] = {
      {"WS, 1 subtracter", SpeculationMode::kWavesched, 1},
      {"WS, 2 subtracters", SpeculationMode::kWavesched, 2},
      {"single-path spec, 2 subtracters", SpeculationMode::kSinglePath, 2},
      {"WS-spec, 1 subtracter", SpeculationMode::kWaveschedSpec, 1},
      {"WS-spec, 2 subtracters", SpeculationMode::kWaveschedSpec, 2},
  };

  std::printf("\n%-33s %8s %7s %6s %6s %9s\n", "design point", "E.N.C.",
              "states", "best", "worst", "area(GE)");
  for (const Point& pt : points) {
    Allocation alloc = Allocation::None(lib);
    alloc.Set(lib, "sub1", pt.subs);
    alloc.Set(lib, "comp1", 1);
    alloc.Set(lib, "eqc1", 2);
    SchedulerOptions opts;
    opts.mode = pt.mode;
    opts.lookahead = 2;
    try {
      const ScheduleResult r = Schedule({&g, &lib, &alloc, opts}).value();
      const double enc = MeasureExpectedCycles(r.stg, g, stimuli);
      const AreaReport area =
          EstimateArea(r.stg, g, lib, stimuli[0], AreaModel{}, &alloc);
      std::printf("%-33s %8.1f %7zu %6lld %6lld %9.0f\n", pt.label, enc,
                  r.stg.num_work_states(),
                  static_cast<long long>(BestCaseCycles(r.stg)),
                  static_cast<long long>(WorstCaseCycles(r.stg, 600)),
                  area.total);
    } catch (const Error& e) {
      std::printf("%-33s failed: %s\n", pt.label, e.what());
    }
  }
  return 0;
}
