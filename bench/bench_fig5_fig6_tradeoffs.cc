// Reproduces Figures 5 and 6 of the paper (Example 2): the effect of
// resource constraints and branch probabilities on speculative scheduling.
//
// Three schedules of the Figure 4 CDFG are derived:
//   (a) one adder, P(c1) < 0.5 — the scheduler gives the adder to the
//       false-path addition first;
//   (b) one adder, P(c1) > 0.5 — the true-path addition wins;
//   (c) two adders — both additions are speculated in the first cycle.
//
// Each schedule is then evaluated analytically (absorbing Markov chain) for
// P(c1) swept over [0,1] — the paper's Figure 6 plot. Expected shape:
// (a) and (b) cross at P = 0.5, and (c) dominates both everywhere.
#include <cstdio>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

// The probability-annotated condition node of the Fig. 4 CDFG (">1").
NodeId FindCond(const Cdfg& g) {
  for (const Node& n : g.nodes()) {
    if (n.name == ">1") return n.id;
  }
  WS_THROW("fig4 CDFG has no >1 node");
}

}  // namespace
}  // namespace ws

int main() {
  using namespace ws;

  struct Config {
    const char* label;
    double p_at_schedule;
    int adders;
  };
  const Config configs[] = {
      {"(a) 1 adder, scheduled for P(c1)=0.3", 0.3, 1},
      {"(b) 1 adder, scheduled for P(c1)=0.7", 0.7, 1},
      {"(c) 2 adders", 0.7, 2},
  };

  std::vector<ScheduleResult> schedules;
  std::vector<Benchmark> benches;
  std::printf("=== Figure 5: three speculative schedules ===\n");
  for (const Config& c : configs) {
    Benchmark b = MakeFig4(c.p_at_schedule, 8, 1998);
    b.allocation.Set(b.library, "add1", c.adders);
    SchedulerOptions opts;
    opts.mode = SpeculationMode::kWaveschedSpec;
    opts.lookahead = b.lookahead;
    ScheduleResult r = Schedule(b.graph, b.library, b.allocation, opts);
    std::printf("--- %s ---\n%s\n", c.label,
                StgToText(r.stg, b.graph).c_str());
    schedules.push_back(std::move(r));
    benches.push_back(std::move(b));
  }

  std::printf("=== Figure 6: expected cycles vs P(c1) "
              "(analytic, fixed schedules) ===\n");
  std::printf("%5s %8s %8s %8s\n", "P", "CCa", "CCb", "CCc");
  int cross_checks = 0;
  for (int step = 0; step <= 10; ++step) {
    const double p = step / 10.0;
    double cc[3];
    for (int i = 0; i < 3; ++i) {
      benches[static_cast<std::size_t>(i)].graph.set_cond_probability(
          FindCond(benches[static_cast<std::size_t>(i)].graph), p);
      cc[i] = ExpectedCycles(schedules[static_cast<std::size_t>(i)].stg,
                             benches[static_cast<std::size_t>(i)].graph);
    }
    std::printf("%5.2f %8.3f %8.3f %8.3f\n", p, cc[0], cc[1], cc[2]);
    if (p < 0.49 && cc[0] <= cc[1] + 1e-9) ++cross_checks;
    if (p > 0.51 && cc[1] <= cc[0] + 1e-9) ++cross_checks;
    if (cc[2] <= cc[0] + 1e-9 && cc[2] <= cc[1] + 1e-9) ++cross_checks;
  }
  std::printf("\nshape checks (a better below 0.5, b better above, c "
              "dominates): %d/21 hold\n", cross_checks);
  return 0;
}
