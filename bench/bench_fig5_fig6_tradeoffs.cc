// Reproduces Figures 5 and 6 of the paper (Example 2): the effect of
// resource constraints and branch probabilities on speculative scheduling.
//
// Three schedules of the Figure 4 CDFG are derived:
//   (a) one adder, P(c1) < 0.5 — the scheduler gives the adder to the
//       false-path addition first;
//   (b) one adder, P(c1) > 0.5 — the true-path addition wins;
//   (c) two adders — both additions are speculated in the first cycle.
//
// The three configurations are one explore-engine grid — designs
// {fig4:0.3, fig4:0.7} × allocations {add1=1, add1=2} under
// Wavesched-spec — and the (a)/(b)/(c) schedules are picked out of the
// report by their grid coordinates. The fourth grid point (0.3 with two
// adders) is schedule (c) again, by symmetry: with no resource conflict the
// branch probability no longer matters.
//
// Each schedule is then evaluated analytically (absorbing Markov chain) for
// P(c1) swept over [0,1] — the paper's Figure 6 plot. Expected shape:
// (a) and (b) cross at P = 0.5, and (c) dominates both everywhere.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/metrics.h"
#include "explore/explore.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

// The probability-annotated condition node of the Fig. 4 CDFG (">1").
NodeId FindCond(const Cdfg& g) {
  for (const Node& n : g.nodes()) {
    if (n.name == ">1") return n.id;
  }
  WS_THROW("fig4 CDFG has no >1 node");
}

}  // namespace
}  // namespace ws

int main(int argc, char** argv) {
  using namespace ws;

  ExploreSpec spec;
  spec.designs = {{"fig4:0.3", ""}, {"fig4:0.7", ""}};
  spec.modes = {SpeculationMode::kWaveschedSpec};
  spec.allocations = {{"add1=1", "add1=1"}, {"add1=2", "add1=2"}};
  spec.num_stimuli = 8;
  spec.seed = 1998;
  spec.workers = argc > 2 && std::string(argv[1]) == "--workers"
                     ? std::atoi(argv[2])
                     : 4;
  const Result<ExploreReport> report = RunExplore(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.error().c_str());
    return 1;
  }

  struct Config {
    const char* label;
    const char* design;
    const char* alloc;
  };
  const Config configs[] = {
      {"(a) 1 adder, scheduled for P(c1)=0.3", "fig4:0.3", "add1=1"},
      {"(b) 1 adder, scheduled for P(c1)=0.7", "fig4:0.7", "add1=1"},
      {"(c) 2 adders", "fig4:0.7", "add1=2"},
  };

  std::vector<const ExploreRun*> picked;
  std::vector<Benchmark> benches;
  std::printf("=== Figure 5: three speculative schedules ===\n");
  for (const Config& c : configs) {
    const ExploreRun* run = report->Find(c.design, SpeculationMode::kWaveschedSpec,
                                         c.alloc, "default");
    if (run == nullptr || !run->ok) {
      std::fprintf(stderr, "missing/failed run %s/%s: %s\n", c.design, c.alloc,
                   run != nullptr ? run->error.c_str() : "not found");
      return 1;
    }
    // The report carries the STG; the CDFG it refers to is rebuilt locally
    // (benchmark construction is deterministic in the seed, so node ids
    // line up with the worker's copy).
    const double p = std::atof(c.design + 5);  // "fig4:<p>"
    benches.push_back(MakeFig4(p, spec.num_stimuli, spec.seed));
    std::printf("--- %s ---\n%s\n", c.label,
                StgToText(run->stg, benches.back().graph).c_str());
    picked.push_back(run);
  }

  std::printf("=== Figure 6: expected cycles vs P(c1) "
              "(analytic, fixed schedules) ===\n");
  std::printf("%5s %8s %8s %8s\n", "P", "CCa", "CCb", "CCc");
  int cross_checks = 0;
  for (int step = 0; step <= 10; ++step) {
    const double p = step / 10.0;
    double cc[3];
    for (int i = 0; i < 3; ++i) {
      Cdfg& g = benches[static_cast<std::size_t>(i)].graph;
      g.set_cond_probability(FindCond(g), p);
      cc[i] = ExpectedCycles(picked[static_cast<std::size_t>(i)]->stg, g);
    }
    std::printf("%5.2f %8.3f %8.3f %8.3f\n", p, cc[0], cc[1], cc[2]);
    if (p < 0.49 && cc[0] <= cc[1] + 1e-9) ++cross_checks;
    if (p > 0.51 && cc[1] <= cc[0] + 1e-9) ++cross_checks;
    if (cc[2] <= cc[0] + 1e-9 && cc[2] <= cc[1] + 1e-9) ++cross_checks;
  }
  std::printf("\nshape checks (a better below 0.5, b better above, c "
              "dominates): %d/21 hold\n", cross_checks);
  std::printf("[explore: %zu runs on %d workers in %.1f ms]\n",
              report->runs.size(), report->workers, report->wall_ms);
  return 0;
}
