// serve_bench — throughput/latency benchmark for the continuous-batching
// serve loop, swept over shard counts.
//
// For each shard count (default 1/2/4/8) it stands up an in-process
// ServeServer on a Unix socket with one worker per shard, drives a mixed
// workload from concurrent clients (three quarters distinct-seed computes
// that defeat the cache, one quarter a shared cacheable cell that exercises
// the single-flight/cache path), and reports throughput plus p50/p99
// request latency from the server's own `serve.latency_us` histogram.
//
// Output: a human-readable table on stderr, or `--ws_json[=PATH]` for the
// machine-readable document committed as BENCH_serve.json. Numbers are
// wall-clock measurements on whatever host runs this; the document records
// the CPU count so scaling claims can be read in context.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/metrics.h"
#include "serve/server.h"

namespace ws {
namespace {

struct BenchConfig {
  std::vector<int> shard_counts = {1, 2, 4, 8};
  int clients = 4;
  int per_client = 24;
  int num_stimuli = 5;
};

struct ShardResult {
  int shards = 0;
  int workers = 0;
  int requests = 0;
  int errors = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::int64_t sched_runs = 0;
  std::int64_t cache_hits = 0;
  std::int64_t coalesced = 0;
};

std::string SocketPath(int shards) {
  return "/tmp/ws_serve_bench_" + std::to_string(::getpid()) + "_s" +
         std::to_string(shards) + ".sock";
}

ShardResult RunOne(const BenchConfig& config, int shards) {
  ShardResult result;
  result.shards = shards;
  result.workers = shards;  // one worker per shard: scaling is the question
  result.requests = config.clients * config.per_client;

  ServerOptions options;
  options.unix_path = SocketPath(shards);
  options.shards = shards;
  options.workers = shards;
  options.max_queue = 4096;  // never shed: we are measuring, not protecting
  ServeServer server(options);
  if (const Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "serve_bench: start(shards=%d): %s\n", shards,
                 started.message().c_str());
    result.errors = result.requests;
    return result;
  }
  const ServeAddress address{/*is_unix=*/true, options.unix_path, "", 0};

  std::vector<int> errors(static_cast<std::size_t>(config.clients), 0);
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&config, &address, &errors, c] {
      Result<ServeClient> client = ServeClient::Connect(address);
      if (!client.ok()) {
        errors[static_cast<std::size_t>(c)] = config.per_client;
        return;
      }
      for (int r = 0; r < config.per_client; ++r) {
        CellRequest request;
        request.num_stimuli = config.num_stimuli;
        if (r % 4 == 3) {
          // Shared cacheable cell: all clients repeat it, so it lands as a
          // cache hit or coalesces onto an in-flight computation.
          request.design = DesignSpec{"tlc", ""};
        } else {
          // Distinct fingerprint per request: always a real compute.
          request.design = DesignSpec{"gcd", ""};
          request.seed = 100000 + static_cast<std::uint64_t>(c) * 1000 +
                         static_cast<std::uint64_t>(r);
        }
        const Result<ScheduleArtifact> artifact = client->Schedule(request);
        if (!artifact.ok() || !artifact->run.ok) {
          ++errors[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();

  result.seconds = std::chrono::duration<double>(end - begin).count();
  for (const int e : errors) result.errors += e;
  result.throughput_rps =
      result.seconds > 0.0 ? result.requests / result.seconds : 0.0;
  const Histogram* latency = server.metrics().histogram("serve.latency_us");
  result.p50_us = latency->Quantile(0.5);
  result.p99_us = latency->Quantile(0.99);
  result.sched_runs = server.metrics().counter("serve.sched_runs")->value();
  result.cache_hits = server.metrics().counter("serve.cache_hits")->value();
  result.coalesced = server.metrics().counter("serve.coalesced")->value();

  server.Stop();
  std::remove(options.unix_path.c_str());
  return result;
}

std::string RenderJson(const BenchConfig& config,
                       const std::vector<ShardResult>& results) {
  std::string out;
  char buf[512];
  out += "{\n";
  out += "  \"schema\": \"ws-bench-serve-v1\",\n";
  out +=
      "  \"comment\": \"Continuous-batching serve loop swept over shard "
      "counts; one worker per shard, mixed workload (3/4 distinct-seed "
      "computes, 1/4 shared cacheable cell). Latency quantiles come from "
      "the server's serve.latency_us histogram. Regenerate with: "
      "bench/serve_bench --ws_json=BENCH_serve.json\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"config\": {\"clients\": %d, \"per_client\": %d, "
                "\"num_stimuli\": %d, \"cpus\": %u},\n",
                config.clients, config.per_client, config.num_stimuli,
                std::thread::hardware_concurrency());
  out += buf;
  out += "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShardResult& r = results[i];
    std::snprintf(
        buf, sizeof buf,
        "    {\"shards\": %d, \"workers\": %d, \"requests\": %d, "
        "\"errors\": %d, \"seconds\": %.3f, \"throughput_rps\": %.1f, "
        "\"p50_us\": %.0f, \"p99_us\": %.0f, \"sched_runs\": %lld, "
        "\"cache_hits\": %lld, \"coalesced\": %lld}%s\n",
        r.shards, r.workers, r.requests, r.errors, r.seconds,
        r.throughput_rps, r.p50_us, r.p99_us,
        static_cast<long long>(r.sched_runs),
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.coalesced),
        i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace
}  // namespace ws

int main(int argc, char** argv) {
  using namespace ws;
  BenchConfig config;
  std::string json_path;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--ws_json") == 0) {
      json_mode = true;
    } else if (std::strncmp(arg, "--ws_json=", 10) == 0) {
      json_mode = true;
      json_path = arg + 10;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      config.shard_counts.clear();
      for (const char* p = arg + 9; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < 1) {
          std::fprintf(stderr, "serve_bench: bad --shards list: %s\n", arg);
          return 1;
        }
        config.shard_counts.push_back(static_cast<int>(v));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      config.clients = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--per_client=", 13) == 0) {
      config.per_client = std::atoi(arg + 13);
    } else {
      std::fprintf(stderr,
                   "usage: serve_bench [--shards=1,2,4,8] [--clients=N]\n"
                   "                   [--per_client=N] [--ws_json[=PATH]]\n");
      return std::strcmp(arg, "--help") == 0 ? 0 : 1;
    }
  }
  if (config.clients < 1 || config.per_client < 1 ||
      config.shard_counts.empty()) {
    std::fprintf(stderr, "serve_bench: nothing to run\n");
    return 1;
  }

  std::vector<ShardResult> results;
  for (const int shards : config.shard_counts) {
    const ShardResult r = RunOne(config, shards);
    std::fprintf(stderr,
                 "shards=%d workers=%d: %d req in %.3fs = %.1f req/s  "
                 "p50=%.0fus p99=%.0fus  runs=%lld hits=%lld coalesced=%lld "
                 "errors=%d\n",
                 r.shards, r.workers, r.requests, r.seconds,
                 r.throughput_rps, r.p50_us, r.p99_us,
                 static_cast<long long>(r.sched_runs),
                 static_cast<long long>(r.cache_hits),
                 static_cast<long long>(r.coalesced), r.errors);
    if (r.errors != 0) {
      std::fprintf(stderr, "serve_bench: %d request(s) failed\n", r.errors);
      return 1;
    }
    results.push_back(r);
  }

  if (json_mode) {
    const std::string doc = RenderJson(config, results);
    if (json_path.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "serve_bench: cannot open %s\n",
                     json_path.c_str());
        return 1;
      }
      std::fputs(doc.c_str(), f);
      std::fclose(f);
    }
  }
  return 0;
}
