// Reproduces Figure 7 / Example 3 of the paper: restricting speculation to
// a single (most probable) path is provably dominated by fine-grained
// multi-path speculation.
//
// The Fig. 4 CDFG is scheduled with the same resources/probabilities as
// Fig. 5(b), once in multi-path mode and once in single-path mode; the
// expected cycles CCd(P) of the single-path schedule is compared against
// CCb(P). Expected shape: CCd >= CCb for every P (the paper derives
// CCd = 4 - P vs CCb = 3).
#include <cstdio>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

NodeId FindCond(const Cdfg& g) {
  for (const Node& n : g.nodes()) {
    if (n.name == ">1") return n.id;
  }
  WS_THROW("fig4 CDFG has no >1 node");
}

}  // namespace
}  // namespace ws

int main() {
  using namespace ws;
  Benchmark b = MakeFig4(0.7, 8, 1998);

  SchedulerOptions multi;
  multi.mode = SpeculationMode::kWaveschedSpec;
  multi.lookahead = b.lookahead;
  SchedulerOptions single = multi;
  single.mode = SpeculationMode::kSinglePath;

  const ScheduleResult rm = Schedule({&b.graph, &b.library, &b.allocation, multi}).value();
  const ScheduleResult rs =
      Schedule({&b.graph, &b.library, &b.allocation, single}).value();

  std::printf("=== multi-path speculative schedule (Fig. 5(b)) ===\n%s\n",
              StgToText(rm.stg, b.graph).c_str());
  std::printf("=== single-path speculative schedule (Fig. 7) ===\n%s\n",
              StgToText(rs.stg, b.graph).c_str());

  std::printf("%5s %10s %10s\n", "P", "CCb(multi)", "CCd(single)");
  bool dominated = true;
  for (int step = 0; step <= 10; ++step) {
    const double p = step / 10.0;
    b.graph.set_cond_probability(FindCond(b.graph), p);
    const double ccb = ExpectedCycles(rm.stg, b.graph);
    const double ccd = ExpectedCycles(rs.stg, b.graph);
    std::printf("%5.2f %10.3f %10.3f\n", p, ccb, ccd);
    if (ccd + 1e-9 < ccb) dominated = false;
  }
  std::printf("\nCCd >= CCb for all P: %s (paper: CCd = 4 - P >= CCb = 3)\n",
              dominated ? "yes" : "NO");
  return 0;
}
