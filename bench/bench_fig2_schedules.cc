// Reproduces Figure 2 of the paper: the non-speculative (a) and speculative
// (b) schedules of the Figure 1 while loop (Test1).
//
// As in Example 1, the speculative schedule is derived with no resource
// constraints and a 2-stage pipelined multiplier; the key property to check
// is the steady state: the non-speculative schedule needs a long serial
// chain per iteration (the paper's takes 8 cycles), while the speculative
// one initiates a new loop iteration every cycle (states S7/S8 of Fig. 2(b)).
#include <cstdio>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

int main() {
  using namespace ws;
  Benchmark b = MakeTest1(8, 1998);
  // Example 1 is scheduled with no resource constraints.
  const Allocation unlimited = Allocation::Unlimited(b.library);

  SchedulerOptions ws_opts;
  ws_opts.mode = SpeculationMode::kWavesched;
  ws_opts.lookahead = b.lookahead;
  SchedulerOptions sp_opts = ws_opts;
  sp_opts.mode = SpeculationMode::kWaveschedSpec;

  const ScheduleResult ws = Schedule({&b.graph, &b.library, &unlimited, ws_opts}).value();
  const ScheduleResult sp = Schedule({&b.graph, &b.library, &unlimited, sp_opts}).value();

  std::printf("=== Figure 2(a): schedule without speculative execution ===\n");
  std::printf("%s\n", StgToText(ws.stg, b.graph).c_str());
  std::printf("=== Figure 2(b): schedule with speculative execution ===\n");
  std::printf("%s\n", StgToText(sp.stg, b.graph).c_str());

  // Per-iteration cost in the steady state: expected cycles scale.
  const double enc_ws = ExpectedCycles(ws.stg, b.graph);
  const double enc_sp = ExpectedCycles(sp.stg, b.graph);
  std::printf("expected cycles: WS %.1f, WS-spec %.1f (ratio %.2fx; the\n"
              "paper's Fig. 2 pair runs 8 cycles vs ~1 cycle per iteration)\n",
              enc_ws, enc_sp, enc_ws / enc_sp);
  std::printf("speculative ops scheduled: %d; squashed in-flight: %d\n",
              sp.stats.speculative_ops, sp.stats.squashed_ops);
  return 0;
}
