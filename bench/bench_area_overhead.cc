// Reproduces the paper's Section 5 area experiment: the RTL area overhead
// of the speculative GCD schedule relative to the non-speculative one
// ("The area overhead for the circuit produced from Wavesched-spec was
// found to be 3.1%").
//
// The in-repo synthesis substrate (binding + measured-lifetime register
// allocation + one-hot FSM; see src/rtl/) replaces the authors' in-house
// system + MSU library. Both designs are charged the full Table 2
// allocation, as in the paper's flow. We additionally sweep the speculation
// depth (lookahead) — an ablation showing that the overhead is bought by
// speculative-result registers and controller states, the costs the paper's
// companion register-synthesis technique [20] targets.
#include <cstdio>

#include "analysis/metrics.h"
#include "rtl/rtl.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

int main() {
  using namespace ws;
  Benchmark b = MakeGcd(40, 2024);

  SchedulerOptions ws_opts;
  ws_opts.mode = SpeculationMode::kWavesched;
  ws_opts.lookahead = b.lookahead;
  const ScheduleResult ws = Schedule({&b.graph, &b.library, &b.allocation, ws_opts}).value();
  const AreaReport base = EstimateArea(ws.stg, b.graph, b.library,
                                       b.stimuli[0], AreaModel{},
                                       &b.allocation);
  const double enc_ws = MeasureExpectedCycles(ws.stg, b.graph, b.stimuli);
  std::printf("=== GCD area overhead (paper: 3.1%%) ===\n");
  std::printf("WS          : enc=%6.1f  %s\n", enc_ws,
              base.ToString().c_str());

  for (int lookahead : {1, 2, 3}) {
    SchedulerOptions sp_opts = ws_opts;
    sp_opts.mode = SpeculationMode::kWaveschedSpec;
    sp_opts.lookahead = lookahead;
    const ScheduleResult sp = Schedule({&b.graph, &b.library, &b.allocation, sp_opts}).value();
    const AreaReport area = EstimateArea(sp.stg, b.graph, b.library,
                                         b.stimuli[0], AreaModel{},
                                         &b.allocation);
    const double enc = MeasureExpectedCycles(sp.stg, b.graph, b.stimuli);
    std::printf("WS-spec la=%d: enc=%6.1f  %s\n", lookahead, enc,
                area.ToString().c_str());
    std::printf("              speedup=%.2fx  area overhead=%+.1f%%\n",
                enc_ws / enc, 100.0 * (area.total - base.total) / base.total);
  }
  std::printf(
      "\n(The overhead is dominated by speculative-result registers and\n"
      "extra controller states; the paper pairs this scheduler with the\n"
      "shift-register speculative storage of [Herrmann & Ernst 97] to keep\n"
      "it at 3.1%% — our conservative per-value register bound is the\n"
      "uppermost curve of that trade-off.)\n");
  return 0;
}
