// Reproduces Table 1 (and echoes Table 2) of the paper:
//
//   "Expected number of cycles, number of states, best- and worst-case
//    number of cycles results" for Barcode, GCD, Test1, TLC, Findmin under
//   Wavesched (WS) and Wavesched-spec (WS-spec).
//
// Built on the design-space exploration engine: the benchmark × mode grid
// is fanned out over a worker pool (`--workers N`, default 4; results are
// identical for any worker count) and the rows are read back out of the
// ExploreReport. `--json` dumps the full report — including the
// per-phase scheduler timing attribution — instead of the tables.
//
// E.N.C. is reported twice: measured by trace simulation over the
// deterministic Gaussian stimulus set (the paper's methodology, via the
// in-repo cycle-accurate simulator instead of Synopsys VSS), and computed
// analytically from the absorbing-Markov-chain model. Every simulation run
// is checked bit-exactly against the golden CDFG interpreter.
//
// Expected shape vs the paper (absolute numbers differ — the authors'
// trace distributions are not archived): WS-spec <= WS on every row; Test1
// shows the largest speedup (paper: 7.2x); TLC shows none (507 = 507);
// GCD/Barcode/Findmin improve ~2-3x; average speedup ~2.8x.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "explore/explore.h"
#include "explore/report.h"
#include "suite/benchmarks.h"

int main(int argc, char** argv) {
  using namespace ws;
  const int kStimuli = 50;
  const std::uint64_t kSeed = 1998;

  int workers = 4;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: bench_table1 [--workers N] [--json]\n");
      return 2;
    }
  }

  ExploreSpec spec;
  spec.designs = {{"barcode", ""}, {"gcd", ""}, {"test1", ""},
                  {"tlc", ""},     {"findmin", ""}};
  spec.modes = {SpeculationMode::kWavesched, SpeculationMode::kWaveschedSpec};
  spec.num_stimuli = kStimuli;
  spec.seed = kSeed;
  spec.workers = workers;
  const Result<ExploreReport> report = RunExplore(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.error().c_str());
    return 1;
  }
  if (json) {
    std::fputs(ExploreReportToJson(*report).c_str(), stdout);
    return 0;
  }

  std::printf("=== Table 2: allocation constraints (paper's, reconstructed) ===\n");
  std::printf("%-9s %5s %5s %6s %6s %5s %5s\n", "circuit", "add1", "sub1",
              "mult1", "comp1", "eqc1", "inc1");
  // The constraints live on the benchmarks; stimuli are irrelevant here, so
  // rebuild with a single stimulus.
  for (const DesignSpec& d : spec.designs) {
    const Benchmark b = MakeBenchmarkByName(d.name, 1, kSeed).value();
    auto cell = [&](const char* name) {
      static char buf[8][16];
      static int slot = 0;
      slot = (slot + 1) % 8;
      const int c = b.allocation.Count(b.library.IndexOf(name));
      if (c == Allocation::kUnlimited) {
        std::snprintf(buf[slot], sizeof(buf[slot]), "inf");
      } else if (c == 0) {
        std::snprintf(buf[slot], sizeof(buf[slot]), "-");
      } else {
        std::snprintf(buf[slot], sizeof(buf[slot]), "%d", c);
      }
      return buf[slot];
    };
    std::printf("%-9s %5s %5s %6s %6s %5s %5s\n", b.name.c_str(),
                cell("add1"), cell("sub1"), cell("mult1"), cell("comp1"),
                cell("eqc1"), cell("inc1"));
  }

  std::printf("\n=== Table 1: E.N.C., #states, best-, worst-case cycles ===\n");
  std::printf("%-9s | %9s %9s | %7s %7s | %6s %6s | %7s %7s | %7s\n",
              "circuit", "ENC(WS)", "ENC(sp)", "st(WS)", "st(sp)", "bc(WS)",
              "bc(sp)", "wc(WS)", "wc(sp)", "speedup");
  double speedup_sum = 0.0;
  int rows = 0;
  for (const DesignSpec& d : spec.designs) {
    const ExploreRun* ws = report->Find(d.name, SpeculationMode::kWavesched,
                                        "default", "default");
    const ExploreRun* sp = report->Find(
        d.name, SpeculationMode::kWaveschedSpec, "default", "default");
    if (ws == nullptr || sp == nullptr || !ws->ok || !sp->ok) {
      std::printf("%-9s | error: %s\n", d.name.c_str(),
                  ws != nullptr && !ws->ok ? ws->error.c_str()
                                           : sp->error.c_str());
      continue;
    }
    const double speedup = ws->enc_sim / sp->enc_sim;
    speedup_sum += speedup;
    ++rows;
    std::printf(
        "%-9s | %9.1f %9.1f | %7zu %7zu | %6lld %6lld | %7lld %7lld | "
        "%6.2fx\n",
        d.name.c_str(), ws->enc_sim, sp->enc_sim, ws->states, sp->states,
        static_cast<long long>(ws->best_case),
        static_cast<long long>(sp->best_case),
        static_cast<long long>(ws->worst_case),
        static_cast<long long>(sp->worst_case), speedup);
    std::printf(
        "%-9s | (Markov: WS %.1f, WS-spec %.1f; worst case uses a loop "
        "budget of %d)\n",
        "", ws->enc_markov, sp->enc_markov, ws->worst_case_budget);
  }
  std::printf("\naverage E.N.C. speedup of WS-spec over WS: %.2fx "
              "(paper: 2.8x)\n",
              speedup_sum / static_cast<double>(rows));
  std::printf("[explore: %zu runs on %d workers in %.1f ms]\n",
              report->runs.size(), report->workers, report->wall_ms);

  // Beyond the paper: the memory-disambiguation workloads under WS-spec,
  // with the conservative per-array chain vs. the LSQ-relaxed dependence
  // model (SchedulerOptions::mem_spec).
  ExploreSpec mem_spec = spec;
  mem_spec.designs = {{"histogram", ""}, {"sieve", ""}, {"sparse_accum", ""}};
  mem_spec.modes = {SpeculationMode::kWaveschedSpec};
  mem_spec.mem_specs = {false, true};
  const Result<ExploreReport> mem_report = RunExplore(mem_spec);
  if (!mem_report.ok()) {
    std::fprintf(stderr, "error: %s\n", mem_report.error().c_str());
    return 1;
  }
  std::printf("\n=== Memory disambiguation (WS-spec, chain vs. LSQ) ===\n");
  std::printf("%-12s | %9s %9s | %7s %7s | %7s\n", "circuit", "ENC(chn)",
              "ENC(lsq)", "st(chn)", "st(lsq)", "speedup");
  for (const DesignSpec& d : mem_spec.designs) {
    const ExploreRun* chain =
        mem_report->Find(d.name, SpeculationMode::kWaveschedSpec, "default",
                         "default", SelectionPolicy::kCriticality, false);
    const ExploreRun* lsq =
        mem_report->Find(d.name, SpeculationMode::kWaveschedSpec, "default",
                         "default", SelectionPolicy::kCriticality, true);
    if (chain == nullptr || lsq == nullptr || !chain->ok || !lsq->ok) {
      std::printf("%-12s | error: %s\n", d.name.c_str(),
                  chain != nullptr && !chain->ok ? chain->error.c_str()
                                                 : lsq->error.c_str());
      continue;
    }
    std::printf("%-12s | %9.1f %9.1f | %7zu %7zu | %6.2fx\n", d.name.c_str(),
                chain->enc_sim, lsq->enc_sim, chain->states, lsq->states,
                chain->enc_sim / lsq->enc_sim);
  }
  std::printf("[explore: %zu runs on %d workers in %.1f ms]\n",
              mem_report->runs.size(), mem_report->workers,
              mem_report->wall_ms);
  return 0;
}
