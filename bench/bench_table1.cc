// Reproduces Table 1 (and echoes Table 2) of the paper:
//
//   "Expected number of cycles, number of states, best- and worst-case
//    number of cycles results" for Barcode, GCD, Test1, TLC, Findmin under
//   Wavesched (WS) and Wavesched-spec (WS-spec).
//
// E.N.C. is reported twice: measured by trace simulation over the
// deterministic Gaussian stimulus set (the paper's methodology, via the
// in-repo cycle-accurate simulator instead of Synopsys VSS), and computed
// analytically from the absorbing-Markov-chain model. Every simulation run
// is checked bit-exactly against the golden CDFG interpreter.
//
// Expected shape vs the paper (absolute numbers differ — the authors'
// trace distributions are not archived): WS-spec <= WS on every row; Test1
// shows the largest speedup (paper: 7.2x); TLC shows none (507 = 507);
// GCD/Barcode/Findmin improve ~2-3x; average speedup ~2.8x.
#include <cstdio>

#include "analysis/metrics.h"
#include "sched/scheduler.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

struct Row {
  const char* label;
  double enc_sim = 0.0;
  double enc_markov = 0.0;
  std::size_t states = 0;
  std::int64_t best = 0;
  std::int64_t worst = 0;
};

Row Measure(const Benchmark& b, SpeculationMode mode) {
  SchedulerOptions opts;
  opts.mode = mode;
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule(b.graph, b.library, b.allocation, opts);
  Row row;
  row.enc_sim = MeasureExpectedCycles(r.stg, b.graph, b.stimuli);
  row.enc_markov = ExpectedCycles(r.stg, b.graph);
  row.states = r.stg.num_work_states();
  row.best = BestCaseCycles(r.stg);
  row.worst = WorstCaseCycles(r.stg, b.worst_case_budget);
  return row;
}

}  // namespace
}  // namespace ws

int main() {
  using namespace ws;
  const int kStimuli = 50;
  const std::uint64_t kSeed = 1998;

  std::printf("=== Table 2: allocation constraints (paper's, reconstructed) ===\n");
  std::printf("%-9s %5s %5s %6s %6s %5s %5s\n", "circuit", "add1", "sub1",
              "mult1", "comp1", "eqc1", "inc1");
  auto suite = MakeTable1Suite(kStimuli, kSeed);
  for (const Benchmark& b : suite) {
    auto count = [&](const char* name) {
      const int c = b.allocation.Count(b.library.IndexOf(name));
      return c;
    };
    auto cell = [&](const char* name) {
      static char buf[8][16];
      static int slot = 0;
      slot = (slot + 1) % 8;
      const int c = count(name);
      if (c == Allocation::kUnlimited) {
        std::snprintf(buf[slot], sizeof(buf[slot]), "inf");
      } else if (c == 0) {
        std::snprintf(buf[slot], sizeof(buf[slot]), "-");
      } else {
        std::snprintf(buf[slot], sizeof(buf[slot]), "%d", c);
      }
      return buf[slot];
    };
    std::printf("%-9s %5s %5s %6s %6s %5s %5s\n", b.name.c_str(),
                cell("add1"), cell("sub1"), cell("mult1"), cell("comp1"),
                cell("eqc1"), cell("inc1"));
  }

  std::printf("\n=== Table 1: E.N.C., #states, best-, worst-case cycles ===\n");
  std::printf("%-9s | %9s %9s | %7s %7s | %6s %6s | %7s %7s | %7s\n",
              "circuit", "ENC(WS)", "ENC(sp)", "st(WS)", "st(sp)", "bc(WS)",
              "bc(sp)", "wc(WS)", "wc(sp)", "speedup");
  double speedup_sum = 0.0;
  for (const Benchmark& b : suite) {
    const Row ws = Measure(b, SpeculationMode::kWavesched);
    const Row sp = Measure(b, SpeculationMode::kWaveschedSpec);
    const double speedup = ws.enc_sim / sp.enc_sim;
    speedup_sum += speedup;
    std::printf(
        "%-9s | %9.1f %9.1f | %7zu %7zu | %6lld %6lld | %7lld %7lld | "
        "%6.2fx\n",
        b.name.c_str(), ws.enc_sim, sp.enc_sim, ws.states, sp.states,
        static_cast<long long>(ws.best), static_cast<long long>(sp.best),
        static_cast<long long>(ws.worst), static_cast<long long>(sp.worst),
        speedup);
    std::printf(
        "%-9s | (Markov: WS %.1f, WS-spec %.1f; worst case uses a loop "
        "budget of %d)\n",
        "", ws.enc_markov, sp.enc_markov, b.worst_case_budget);
  }
  std::printf("\naverage E.N.C. speedup of WS-spec over WS: %.2fx "
              "(paper: 2.8x)\n",
              speedup_sum / static_cast<double>(suite.size()));
  return 0;
}
