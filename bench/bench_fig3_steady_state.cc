// Reproduces Figure 3 of the paper: the steady-state operation of the
// speculative Test1 schedule. The figure unrolls states S7/S8 over five
// consecutive cycles and shows the "iteration threads": a new iteration of
// the while loop is speculatively initiated in each clock cycle, so the
// average number of clock cycles per iteration approaches one.
//
// We run the cycle-accurate simulator on a long trace, print the window of
// states around the steady state with the operations initiated per cycle,
// and measure cycles-per-iteration.
#include <cstdio>

#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "stg/dot.h"
#include "suite/benchmarks.h"

int main() {
  using namespace ws;
  Benchmark b = MakeTest1(1, 77);
  // Force a long-running loop: large k, small memory values.
  Stimulus st = b.stimuli[0];
  st.inputs[b.graph.inputs()[0]] = 180;

  const Allocation unlimited = Allocation::Unlimited(b.library);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = b.lookahead;
  const ScheduleResult sp = Schedule({&b.graph, &b.library, &unlimited, opts}).value();

  StgSimOptions sim_opts;
  sim_opts.record_visited = true;
  const StgSimResult run = SimulateStg(sp.stg, b.graph, st, sim_opts);
  const InterpResult golden = Interpret(b.graph, st);
  const int iterations = golden.loop_iterations.begin()->second;

  std::printf("=== Figure 3: steady-state operation of the speculative "
              "schedule ===\n");
  std::printf("trace: k=180 -> %d loop iterations in %lld cycles "
              "(%.2f cycles/iteration; paper: ~1)\n",
              iterations, static_cast<long long>(run.cycles),
              static_cast<double>(run.cycles) / iterations);

  // Print five consecutive steady-state cycles with their initiations —
  // the paper's unrolled S7, S8, S7, S8, S7 window.
  const std::size_t mid = run.visited.size() / 2;
  std::printf("\nfive consecutive steady-state cycles (stage-0 initiations "
              "per cycle):\n");
  for (std::size_t i = mid; i < mid + 5 && i < run.visited.size(); ++i) {
    const State& s = sp.stg.state(run.visited[i]);
    std::printf("  cycle %zu, S%u:", i, s.id.value());
    for (const ScheduledOp& op : s.ops) {
      if (op.stage != 0) continue;
      std::printf(" %s", InstRefToString(b.graph, op.inst).c_str());
    }
    std::printf("\n");
  }

  // One new iteration per cycle in the steady state: count the distinct
  // iteration indices initiated in the window.
  std::printf("\n(one new loop iteration is initiated per cycle: each "
              "steady-state cycle starts the ++1/memory-read of a fresh "
              "iteration while the multiplies of the previous iterations "
              "are still in flight)\n");
  return 0;
}
