// Microbenchmarks (google-benchmark): runtime of the scheduler and its
// substrates. Not a paper artifact — engineering data for the library
// itself (the paper reports no tool runtimes).
//
// JSON output mode: `bench_micro --ws_json[=PATH]` skips google-benchmark
// entirely and writes the suite-level perf snapshot (the same document
// `tools/bench_to_json` produces for BENCH_sched.json) to PATH or stdout.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/metrics.h"
#include "bdd/bdd.h"
#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "suite/bench_json.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

void BM_BddConjunction(benchmark::State& state) {
  for (auto _ : state) {
    BddManager mgr;
    std::vector<int> vars;
    for (int i = 0; i < 24; ++i) vars.push_back(mgr.NewVar("v"));
    Bdd f = mgr.True();
    for (int i = 0; i < 24; ++i) {
      f = mgr.And(f, i % 2 == 0 ? mgr.Var(vars[static_cast<std::size_t>(i)])
                                : mgr.NotVar(vars[static_cast<std::size_t>(i)]));
    }
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BddConjunction);

// Unique-table throughput: builds a fresh manager per iteration and creates
// a few thousand distinct nodes (disjunction of conjunction pairs keeps the
// graph wide, defeating the ITE cache's trivial hits), so the timing is
// dominated by MakeNode's find-or-insert path including growth/rehashing.
void BM_BddUniqueTableChurn(benchmark::State& state) {
  for (auto _ : state) {
    BddManager mgr;
    std::vector<int> vars;
    for (int i = 0; i < 32; ++i) vars.push_back(mgr.NewVar("v"));
    Bdd f = mgr.False();
    for (int i = 0; i < 31; ++i) {
      for (int j = i + 1; j < 32; ++j) {
        f = mgr.Or(f, mgr.And(mgr.Var(vars[static_cast<std::size_t>(i)]),
                              mgr.Var(vars[static_cast<std::size_t>(j)])));
      }
    }
    benchmark::DoNotOptimize(f);
    state.counters["nodes"] = static_cast<double>(mgr.num_nodes());
  }
}
BENCHMARK(BM_BddUniqueTableChurn);

// ITE-cache hit path: repeats the same conjunction sweep on one manager, so
// after the first pass every operation is a pure cache probe.
void BM_BddIteCacheHits(benchmark::State& state) {
  BddManager mgr;
  std::vector<Bdd> lits;
  for (int i = 0; i < 24; ++i) {
    const int v = mgr.NewVar("v");
    lits.push_back(i % 2 == 0 ? mgr.Var(v) : mgr.NotVar(v));
  }
  for (auto _ : state) {
    Bdd f = mgr.True();
    for (const Bdd lit : lits) f = mgr.And(f, lit);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BddIteCacheHits);

// Balanced AndAll over a deep literal list (the guard-conjunction shape the
// scheduler produces when speculation runs many iterations ahead).
void BM_BddAndAllDeep(benchmark::State& state) {
  BddManager mgr;
  std::vector<Bdd> lits;
  for (int i = 0; i < 48; ++i) {
    const int v = mgr.NewVar("v");
    lits.push_back(i % 3 == 0 ? mgr.NotVar(v) : mgr.Var(v));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.AndAll(lits));
  }
}
BENCHMARK(BM_BddAndAllDeep);

// Cofactor sweep with the reused member memo: the shape Fold() produces at
// every controller fork (restrict every live guard by one variable).
void BM_BddRestrictSweep(benchmark::State& state) {
  BddManager mgr;
  std::vector<int> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(mgr.NewVar("v"));
  std::vector<Bdd> guards;
  Bdd acc = mgr.True();
  for (int i = 0; i + 1 < 20; ++i) {
    acc = mgr.And(acc, mgr.Or(mgr.Var(vars[static_cast<std::size_t>(i)]),
                              mgr.Var(vars[static_cast<std::size_t>(i + 1)])));
    guards.push_back(acc);
  }
  for (auto _ : state) {
    for (const Bdd g : guards) {
      benchmark::DoNotOptimize(mgr.Restrict(g, vars[7], true));
      benchmark::DoNotOptimize(mgr.Restrict(g, vars[8], false));
    }
  }
}
BENCHMARK(BM_BddRestrictSweep);

// Shift-canonical rename, the guard-canonicalization primitive of the
// closure fingerprint: every live guard renamed down by one iteration.
void BM_BddRenameDense(benchmark::State& state) {
  BddManager mgr;
  std::vector<int> vars;
  for (int i = 0; i < 24; ++i) vars.push_back(mgr.NewVar("v"));
  std::vector<Bdd> guards;
  for (int i = 0; i + 2 < 24; i += 3) {
    guards.push_back(mgr.Or(
        mgr.And(mgr.Var(vars[static_cast<std::size_t>(i)]),
                mgr.Var(vars[static_cast<std::size_t>(i + 1)])),
        mgr.NotVar(vars[static_cast<std::size_t>(i + 2)])));
  }
  std::vector<int> shift_map(24);
  for (int i = 0; i < 24; ++i) shift_map[static_cast<std::size_t>(i)] = (i + 8) % 24;
  for (auto _ : state) {
    bool fresh = true;
    for (const Bdd g : guards) {
      benchmark::DoNotOptimize(mgr.RenameDense(g, shift_map, fresh));
      fresh = false;
    }
  }
}
BENCHMARK(BM_BddRenameDense);

void BM_BddProbability(benchmark::State& state) {
  BddManager mgr;
  std::vector<int> vars;
  for (int i = 0; i < 16; ++i) vars.push_back(mgr.NewVar("v"));
  Bdd f = mgr.False();
  for (int i = 0; i + 1 < 16; i += 2) {
    f = mgr.Or(f, mgr.And(mgr.Var(vars[static_cast<std::size_t>(i)]),
                          mgr.Var(vars[static_cast<std::size_t>(i + 1)])));
  }
  std::vector<double> probs(16, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.Probability(f, probs));
  }
}
BENCHMARK(BM_BddProbability);

void ScheduleBenchmark(benchmark::State& state, const char* which,
                       SpeculationMode mode) {
  Benchmark b = [&] {
    if (std::string(which) == "gcd") return MakeGcd(4, 7);
    if (std::string(which) == "test1") return MakeTest1(4, 7);
    if (std::string(which) == "histogram") return MakeHistogram(4, 7);
    return MakeFindmin(4, 7);
  }();
  for (auto _ : state) {
    SchedulerOptions opts;
    opts.mode = mode;
    opts.lookahead = b.lookahead;
    benchmark::DoNotOptimize(
        Schedule({&b.graph, &b.library, &b.allocation, opts}).value());
  }
}

void BM_ScheduleGcdWs(benchmark::State& state) {
  ScheduleBenchmark(state, "gcd", SpeculationMode::kWavesched);
}
BENCHMARK(BM_ScheduleGcdWs);

void BM_ScheduleGcdSpec(benchmark::State& state) {
  ScheduleBenchmark(state, "gcd", SpeculationMode::kWaveschedSpec);
}
BENCHMARK(BM_ScheduleGcdSpec);

void BM_ScheduleTest1Spec(benchmark::State& state) {
  ScheduleBenchmark(state, "test1", SpeculationMode::kWaveschedSpec);
}
BENCHMARK(BM_ScheduleTest1Spec);

// Memory speculation: the LSQ-relaxed histogram schedule — disambiguation
// pass, minted comparator literals, alias forks — vs. the same design on
// the conservative program-order chain (BM_ScheduleHistogramChain).
void BM_ScheduleHistogramMemSpec(benchmark::State& state) {
  Benchmark b = MakeHistogram(4, 7);
  for (auto _ : state) {
    SchedulerOptions opts;
    opts.mode = SpeculationMode::kWaveschedSpec;
    opts.lookahead = b.lookahead;
    opts.mem_spec = true;
    benchmark::DoNotOptimize(
        Schedule({&b.graph, &b.library, &b.allocation, opts}).value());
  }
}
BENCHMARK(BM_ScheduleHistogramMemSpec);

void BM_ScheduleHistogramChain(benchmark::State& state) {
  ScheduleBenchmark(state, "histogram", SpeculationMode::kWaveschedSpec);
}
BENCHMARK(BM_ScheduleHistogramChain);

void BM_InterpretGcd(benchmark::State& state) {
  Benchmark b = MakeGcd(4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Interpret(b.graph, b.stimuli[0]));
  }
}
BENCHMARK(BM_InterpretGcd);

void BM_SimulateGcdSpec(benchmark::State& state) {
  Benchmark b = MakeGcd(4, 7);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateStg(r.stg, b.graph, b.stimuli[0]));
  }
}
BENCHMARK(BM_SimulateGcdSpec);

void BM_MarkovExpectedCycles(benchmark::State& state) {
  Benchmark b = MakeBarcode(4, 7);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule({&b.graph, &b.library, &b.allocation, opts}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedCycles(r.stg, b.graph));
  }
}
BENCHMARK(BM_MarkovExpectedCycles);

}  // namespace
}  // namespace ws

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--ws_json") == 0 ||
        std::strncmp(arg, "--ws_json=", 10) == 0) {
      ws::BenchJsonOptions opts;
      opts.label = "bench_micro";
      const ws::Result<std::string> doc = ws::RenderBenchJson(opts);
      if (!doc.ok()) {
        std::fprintf(stderr, "bench_micro: %s\n",
                     doc.status().message().c_str());
        return 1;
      }
      const std::string path =
          std::strlen(arg) > 10 ? std::string(arg + 10) : std::string();
      if (path.empty()) {
        std::fputs(doc.value().c_str(), stdout);
        return 0;
      }
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "bench_micro: cannot open %s\n", path.c_str());
        return 1;
      }
      std::fputs(doc.value().c_str(), f);
      std::fclose(f);
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
