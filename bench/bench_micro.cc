// Microbenchmarks (google-benchmark): runtime of the scheduler and its
// substrates. Not a paper artifact — engineering data for the library
// itself (the paper reports no tool runtimes).
#include <benchmark/benchmark.h>

#include "analysis/metrics.h"
#include "bdd/bdd.h"
#include "sched/scheduler.h"
#include "sim/interpreter.h"
#include "sim/stg_sim.h"
#include "suite/benchmarks.h"

namespace ws {
namespace {

void BM_BddConjunction(benchmark::State& state) {
  for (auto _ : state) {
    BddManager mgr;
    std::vector<int> vars;
    for (int i = 0; i < 24; ++i) vars.push_back(mgr.NewVar("v"));
    Bdd f = mgr.True();
    for (int i = 0; i < 24; ++i) {
      f = mgr.And(f, i % 2 == 0 ? mgr.Var(vars[static_cast<std::size_t>(i)])
                                : mgr.NotVar(vars[static_cast<std::size_t>(i)]));
    }
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BddConjunction);

void BM_BddProbability(benchmark::State& state) {
  BddManager mgr;
  std::vector<int> vars;
  for (int i = 0; i < 16; ++i) vars.push_back(mgr.NewVar("v"));
  Bdd f = mgr.False();
  for (int i = 0; i + 1 < 16; i += 2) {
    f = mgr.Or(f, mgr.And(mgr.Var(vars[static_cast<std::size_t>(i)]),
                          mgr.Var(vars[static_cast<std::size_t>(i + 1)])));
  }
  std::vector<double> probs(16, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.Probability(f, probs));
  }
}
BENCHMARK(BM_BddProbability);

void ScheduleBenchmark(benchmark::State& state, const char* which,
                       SpeculationMode mode) {
  Benchmark b = [&] {
    if (std::string(which) == "gcd") return MakeGcd(4, 7);
    if (std::string(which) == "test1") return MakeTest1(4, 7);
    return MakeFindmin(4, 7);
  }();
  for (auto _ : state) {
    SchedulerOptions opts;
    opts.mode = mode;
    opts.lookahead = b.lookahead;
    benchmark::DoNotOptimize(
        Schedule(b.graph, b.library, b.allocation, opts));
  }
}

void BM_ScheduleGcdWs(benchmark::State& state) {
  ScheduleBenchmark(state, "gcd", SpeculationMode::kWavesched);
}
BENCHMARK(BM_ScheduleGcdWs);

void BM_ScheduleGcdSpec(benchmark::State& state) {
  ScheduleBenchmark(state, "gcd", SpeculationMode::kWaveschedSpec);
}
BENCHMARK(BM_ScheduleGcdSpec);

void BM_ScheduleTest1Spec(benchmark::State& state) {
  ScheduleBenchmark(state, "test1", SpeculationMode::kWaveschedSpec);
}
BENCHMARK(BM_ScheduleTest1Spec);

void BM_InterpretGcd(benchmark::State& state) {
  Benchmark b = MakeGcd(4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Interpret(b.graph, b.stimuli[0]));
  }
}
BENCHMARK(BM_InterpretGcd);

void BM_SimulateGcdSpec(benchmark::State& state) {
  Benchmark b = MakeGcd(4, 7);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule(b.graph, b.library, b.allocation, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateStg(r.stg, b.graph, b.stimuli[0]));
  }
}
BENCHMARK(BM_SimulateGcdSpec);

void BM_MarkovExpectedCycles(benchmark::State& state) {
  Benchmark b = MakeBarcode(4, 7);
  SchedulerOptions opts;
  opts.mode = SpeculationMode::kWaveschedSpec;
  opts.lookahead = b.lookahead;
  const ScheduleResult r = Schedule(b.graph, b.library, b.allocation, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedCycles(r.stg, b.graph));
  }
}
BENCHMARK(BM_MarkovExpectedCycles);

}  // namespace
}  // namespace ws

BENCHMARK_MAIN();
